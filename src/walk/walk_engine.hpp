// KnightKing-like distributed random-walk engine.
//
// Walkers live on the machine owning their current vertex. Every BSP
// iteration each active walker takes one step; a walker whose next vertex
// is owned by another machine is shipped there as a "message walk" — the
// paper's traffic metric (Fig. 5b). A machine's computing load is the
// number of walking steps it executes (Fig. 4), so per-iteration balance
// and waiting time (Figs. 12/13) fall straight out of the accounting.
//
// Walker stepping runs on the exec core when WalkConfig::exec (or
// $BPART_EXEC_THREADS) says so: walker batches are chunked with the
// weight-free over_items mode and every step draws from a counter-based
// RNG stream keyed on (seed, walker, step), so results are bitwise
// identical at any thread count and chunk size (DESIGN.md §13). Unset
// keeps the legacy sequential path, bit-identical to the pre-parallel
// engine (one shared Xoshiro256 stream consumed in walker order).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/bsp.hpp"
#include "exec/exec_config.hpp"
#include "graph/csr.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace bpart::walk {

/// The RNG handed to a walk application for one step. One branch per draw
/// selects between two modes behind a uniform surface:
///  * shared mode wraps the engine's single Xoshiro256 stream — the legacy
///    sequential path, bit-identical to the pre-parallel engine;
///  * keyed mode owns a CounterRng stream derived from
///    (seed, walker id, step index), so a step's draws are a pure function
///    of the key — independent of scheduling, chunking and thread count.
/// uniform/bounded/chance use the exact arithmetic of Xoshiro256's
/// helpers, so shared mode consumes the underlying stream identically to
/// the old direct calls.
class StepRng {
 public:
  /// Shared (legacy) mode over the engine's sequential stream.
  explicit StepRng(Xoshiro256& shared) noexcept
      : shared_(&shared), keyed_(0, 0, 0) {}

  /// Keyed (parallel) mode: an independent stream per (seed, walker, step).
  StepRng(std::uint64_t seed, std::uint64_t walker, std::uint64_t step) noexcept
      : shared_(nullptr), keyed_(seed, walker, step) {}

  /// Keyed mode from a batched stream head (CounterRng::first_draws):
  /// next() hands out `first` and then continues from `post_state` — the
  /// exact draw sequence of the three-argument constructor, with the key
  /// derivation already paid in the vectorized batch.
  static StepRng with_first_draw(std::uint64_t first,
                                 std::uint64_t post_state) noexcept {
    StepRng r(CounterRng::from_raw_state(post_state));
    r.pending_ = first;
    r.has_pending_ = true;
    return r;
  }

  std::uint64_t next() noexcept {
    if (has_pending_) {
      has_pending_ = false;
      return pending_;
    }
    return shared_ != nullptr ? (*shared_)() : keyed_();
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    BPART_DCHECK(bound > 0);
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  explicit StepRng(CounterRng keyed) noexcept
      : shared_(nullptr), keyed_(keyed) {}

  Xoshiro256* shared_;  // non-null = shared mode
  CounterRng keyed_;
  std::uint64_t pending_ = 0;  // first draw handed out before keyed_ runs
  bool has_pending_ = false;
};

/// Immutable view of one walker handed to the application policy.
struct WalkerState {
  graph::VertexId source = 0;    ///< Start vertex.
  graph::VertexId current = 0;
  graph::VertexId previous = graph::kInvalidVertex;  ///< For 2nd-order apps.
  unsigned steps_taken = 0;
};

/// One step's outcome.
struct StepDecision {
  bool terminate = false;
  graph::VertexId next = graph::kInvalidVertex;

  static StepDecision stop() { return {true, graph::kInvalidVertex}; }
  static StepDecision move_to(graph::VertexId v) { return {false, v}; }
};

/// A random-walk application: decides each walker's next step.
class WalkApp {
 public:
  virtual ~WalkApp() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Called once per active walker per iteration. Implementations must be
  /// deterministic given (state, rng).
  [[nodiscard]] virtual StepDecision step(const WalkerState& state,
                                          const graph::Graph& g,
                                          StepRng& rng) const = 0;
};

struct WalkConfig {
  /// Walkers started per vertex (the paper uses 1 or 5 per vertex).
  unsigned walks_per_vertex = 1;
  /// When non-empty, walkers start at these vertices (with multiplicity,
  /// walks_per_vertex copies each) instead of at every vertex — the
  /// single-source / seeded mode used by PPR estimation.
  std::vector<graph::VertexId> sources;
  std::uint64_t seed = 1;
  /// Hard iteration cap (a safety net for apps with probabilistic
  /// termination).
  unsigned max_iterations = 10000;
  /// KnightKing's greedy compute phase (§2.1 of the paper): within one
  /// iteration a walker keeps stepping while it stays on its current
  /// machine, pausing only when it crosses a partition boundary (it is
  /// then shipped and resumes next iteration). This is what ties a
  /// machine's per-iteration load to its *edge* mass, the paper's central
  /// imbalance mechanism. false = one synchronous step per iteration.
  bool greedy_local = true;
  /// Record every walker's full path (memory: walkers × length). Off by
  /// default; the embeddings example turns it on.
  bool record_paths = false;
  /// Exec-core routing: resolved_threads() >= 1 steps walkers in parallel
  /// over chunked batches (chunk size = resolved_chunk_edges() walkers) on
  /// keyed CounterRng streams; 0 (threads unset and $BPART_EXEC_THREADS
  /// unset) keeps the legacy sequential path on the shared stream.
  exec::ExecConfig exec;
};

struct WalkReport {
  cluster::RunReport run;
  std::uint64_t total_steps = 0;
  /// Walkers shipped across machines — the paper's "message walks".
  std::uint64_t message_walks = 0;
  /// Per-vertex visit counts over all walks (including the start visit).
  std::vector<std::uint64_t> visits;
  /// Full walk paths when WalkConfig::record_paths is set.
  std::vector<std::vector<graph::VertexId>> paths;
};

/// Run `app` over all walkers to completion (or max_iterations).
WalkReport run_walks(const graph::Graph& g, const partition::Partition& parts,
                     const WalkApp& app, const WalkConfig& cfg = {},
                     cluster::CostModel model = {});

}  // namespace bpart::walk
