#include "walk/weighted_walk.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpart::walk {

double weighted_walk_edge_weight(graph::VertexId v, graph::VertexId u,
                                 std::uint64_t weight_seed,
                                 std::uint32_t max_weight) {
  const std::uint64_t key = (static_cast<std::uint64_t>(v) << 32) | u;
  return static_cast<double>(splitmix64(key ^ weight_seed) % max_weight) +
         1.0;
}

WeightedRandomWalk::WeightedRandomWalk(const graph::Graph& g, Config cfg)
    : cfg_(cfg) {
  BPART_CHECK(cfg_.max_weight >= 1);
  tables_.reserve(g.num_vertices());
  std::vector<double> weights;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.out_neighbors(v);
    if (nbrs.empty()) {
      tables_.emplace_back();
      continue;
    }
    weights.clear();
    weights.reserve(nbrs.size());
    for (graph::VertexId u : nbrs)
      weights.push_back(weighted_walk_edge_weight(v, u, cfg_.weight_seed,
                                                  cfg_.max_weight));
    tables_.emplace_back(weights);
  }
}

StepDecision WeightedRandomWalk::step(const WalkerState& state,
                                      const graph::Graph& g,
                                      Xoshiro256& rng) const {
  if (state.steps_taken >= cfg_.length) return StepDecision::stop();
  BPART_CHECK_MSG(state.current < tables_.size(),
                  "weighted walk used with a different graph");
  const AliasTable& table = tables_[state.current];
  if (table.empty()) return StepDecision::stop();  // dead end
  const auto pick = static_cast<graph::EdgeId>(table.sample(rng));
  return StepDecision::move_to(g.out_neighbor(state.current, pick));
}

double WeightedRandomWalk::transition_probability(graph::VertexId v,
                                                  graph::EdgeId k) const {
  BPART_CHECK(v < tables_.size());
  BPART_CHECK(!tables_[v].empty());
  return tables_[v].probability(k);
}

}  // namespace bpart::walk
