#include "walk/weighted_walk.hpp"

#include "exec/scheduler.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace bpart::walk {

double weighted_walk_edge_weight(graph::VertexId v, graph::VertexId u,
                                 std::uint64_t weight_seed,
                                 std::uint32_t max_weight) {
  const std::uint64_t key = (static_cast<std::uint64_t>(v) << 32) | u;
  return static_cast<double>(splitmix64(key ^ weight_seed) % max_weight) +
         1.0;
}

WeightedRandomWalk::WeightedRandomWalk(const graph::Graph& g, Config cfg)
    : cfg_(cfg) {
  BPART_CHECK(cfg_.max_weight >= 1);
  const graph::VertexId n = g.num_vertices();
  tables_.resize(n);
  const unsigned threads = cfg_.exec.resolved_threads();
  BPART_SPAN("walk/alias_build", "vertices", static_cast<double>(n),
             "threads", static_cast<double>(threads));

  // Each vertex's table depends only on that vertex's weights, so building
  // into tables_[v] in place is race-free and the result is identical for
  // any schedule.
  auto build_range = [&](graph::VertexId lo, graph::VertexId hi,
                         std::vector<double>& weights) {
    for (graph::VertexId v = lo; v < hi; ++v) {
      const auto nbrs = g.out_neighbors(v);
      if (nbrs.empty()) continue;  // dead end: stays empty
      weights.clear();
      weights.reserve(nbrs.size());
      for (graph::VertexId u : nbrs)
        weights.push_back(weighted_walk_edge_weight(v, u, cfg_.weight_seed,
                                                    cfg_.max_weight));
      tables_[v] = AliasTable(weights);
    }
  };

  if (threads == 0 || n == 0) {
    std::vector<double> weights;
    build_range(0, n, weights);
    return;
  }
  exec::Executor ex(threads);
  const auto plan = exec::ChunkScheduler::over_range(
      g.out_offsets(), 0, n, cfg_.exec.resolved_chunk_edges());
  std::vector<std::vector<double>> scratch(ex.threads());
  ex.run(plan, [&](unsigned w, std::uint32_t, std::uint32_t lo,
                   std::uint32_t hi) { build_range(lo, hi, scratch[w]); });
}

StepDecision WeightedRandomWalk::step(const WalkerState& state,
                                      const graph::Graph& g,
                                      StepRng& rng) const {
  if (state.steps_taken >= cfg_.length) return StepDecision::stop();
  BPART_CHECK_MSG(state.current < tables_.size(),
                  "weighted walk used with a different graph");
  const AliasTable& table = tables_[state.current];
  if (table.empty()) return StepDecision::stop();  // dead end
  const auto pick = static_cast<graph::EdgeId>(table.sample(rng));
  return StepDecision::move_to(g.out_neighbor(state.current, pick));
}

double WeightedRandomWalk::transition_probability(graph::VertexId v,
                                                  graph::EdgeId k) const {
  BPART_CHECK(v < tables_.size());
  BPART_CHECK(!tables_[v].empty());
  return tables_[v].probability(k);
}

}  // namespace bpart::walk
