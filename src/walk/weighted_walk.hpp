// Weighted random walk: per-edge weights sampled via per-vertex alias
// tables, the KnightKing mechanism for static weighted graphs.
//
// The paper's datasets are unweighted; to exercise the weighted code path
// deterministically we derive edge weights by hashing the endpoint pair
// (same trick as engine::sssp). Alias construction is done once per graph
// and shared by all walkers — the expensive step KnightKing amortizes the
// same way.
#pragma once

#include <vector>

#include "walk/alias.hpp"
#include "walk/walk_engine.hpp"

namespace bpart::walk {

/// Deterministic weight of out-edge (v, u); uniform in [1, max_weight].
double weighted_walk_edge_weight(graph::VertexId v, graph::VertexId u,
                                 std::uint64_t weight_seed,
                                 std::uint32_t max_weight);

struct WeightedWalkConfig {
  unsigned length = 8;
  std::uint64_t weight_seed = 7;
  std::uint32_t max_weight = 16;
  /// Exec-core routing for alias construction: resolved_threads() >= 1
  /// builds the per-vertex tables in parallel over edge-balanced vertex
  /// chunks (each table depends only on its own vertex, so the result is
  /// identical at any thread count); 0 keeps the sequential build.
  exec::ExecConfig exec;
};

class WeightedRandomWalk final : public WalkApp {
 public:
  using Config = WeightedWalkConfig;

  /// Builds one alias table per vertex (O(E) total).
  explicit WeightedRandomWalk(const graph::Graph& g, Config cfg = {});

  [[nodiscard]] std::string name() const override { return "weighted-rw"; }
  [[nodiscard]] StepDecision step(const WalkerState& state,
                                  const graph::Graph& g,
                                  StepRng& rng) const override;

  /// Exact transition probability v -> its k-th out-neighbor (for tests).
  [[nodiscard]] double transition_probability(graph::VertexId v,
                                              graph::EdgeId k) const;

 private:
  Config cfg_;
  std::vector<AliasTable> tables_;  // one per vertex; empty for dead ends
};

}  // namespace bpart::walk
