#include "cluster/bsp.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace bpart::cluster {
namespace {

CostModel unit_model() {
  CostModel m;
  m.seconds_per_work_item = 1.0;
  m.seconds_per_message = 0.5;
  m.barrier_latency = 0.0;
  return m;
}

TEST(BspSimulation, SingleIterationAccounting) {
  BspSimulation sim(2, unit_model());
  sim.begin_iteration();
  sim.add_work(0, 10);
  sim.add_work(1, 4);
  sim.add_message(0, 1, 2);
  sim.end_iteration();
  const RunReport r = sim.finish();

  ASSERT_EQ(r.iterations.size(), 1u);
  const IterationReport& it = r.iterations[0];
  EXPECT_DOUBLE_EQ(it.machines[0].compute_seconds, 10.0);
  EXPECT_DOUBLE_EQ(it.machines[0].comm_seconds, 1.0);
  EXPECT_DOUBLE_EQ(it.machines[1].compute_seconds, 4.0);
  // Machine 0 is slowest (11s); machine 1 waits 11 - 4 = 7.
  EXPECT_DOUBLE_EQ(it.machines[0].wait_seconds, 0.0);
  EXPECT_DOUBLE_EQ(it.machines[1].wait_seconds, 7.0);
  EXPECT_DOUBLE_EQ(it.duration_seconds, 11.0);
}

TEST(BspSimulation, LocalMessagesAreFree) {
  BspSimulation sim(2, unit_model());
  sim.begin_iteration();
  sim.add_message(0, 0, 100);
  sim.end_iteration();
  const RunReport r = sim.finish();
  EXPECT_EQ(r.total_messages(), 0u);
}

TEST(BspSimulation, MessageCountsBothSides) {
  BspSimulation sim(3, unit_model());
  sim.begin_iteration();
  sim.add_message(0, 2, 5);
  sim.end_iteration();
  const RunReport r = sim.finish();
  EXPECT_EQ(r.iterations[0].machines[0].messages_sent, 5u);
  EXPECT_EQ(r.iterations[0].machines[2].messages_received, 5u);
  EXPECT_EQ(r.total_messages(), 5u);
}

TEST(BspSimulation, WaitRatioBalancedIsZero) {
  BspSimulation sim(4, unit_model());
  for (int iter = 0; iter < 3; ++iter) {
    sim.begin_iteration();
    for (MachineId m = 0; m < 4; ++m) sim.add_work(m, 100);
    sim.end_iteration();
  }
  EXPECT_DOUBLE_EQ(sim.finish().wait_ratio(), 0.0);
}

TEST(BspSimulation, WaitRatioSkewedApproachesLimit) {
  // One machine does all the work: the other k-1 machines wait the whole
  // iteration, so wait_ratio -> (k-1)/k.
  BspSimulation sim(4, unit_model());
  sim.begin_iteration();
  sim.add_work(0, 1000);
  sim.end_iteration();
  EXPECT_NEAR(sim.finish().wait_ratio(), 0.75, 1e-9);
}

TEST(BspSimulation, BarrierLatencyAddsPerIteration) {
  CostModel m = unit_model();
  m.barrier_latency = 2.0;
  BspSimulation sim(1, m);
  for (int i = 0; i < 5; ++i) {
    sim.begin_iteration();
    sim.end_iteration();
  }
  EXPECT_DOUBLE_EQ(sim.finish().total_seconds(), 10.0);
}

TEST(BspSimulation, WorkPerMachineAggregates) {
  BspSimulation sim(2, unit_model());
  for (int i = 0; i < 3; ++i) {
    sim.begin_iteration();
    sim.add_work(0, 1);
    sim.add_work(1, 2);
    sim.end_iteration();
  }
  const auto work = sim.finish().work_per_machine();
  EXPECT_EQ(work[0], 3u);
  EXPECT_EQ(work[1], 6u);
}

TEST(BspSimulation, ComputeSecondsPerMachineSeries) {
  BspSimulation sim(2, unit_model());
  sim.begin_iteration();
  sim.add_work(1, 7);
  sim.end_iteration();
  const RunReport r = sim.finish();
  const auto series = r.iterations[0].compute_seconds_per_machine();
  EXPECT_DOUBLE_EQ(series[0], 0.0);
  EXPECT_DOUBLE_EQ(series[1], 7.0);
}

TEST(BspSimulation, ProtocolViolationsThrow) {
  BspSimulation sim(2, unit_model());
  EXPECT_THROW(sim.add_work(0, 1), CheckError);      // outside iteration
  EXPECT_THROW(sim.end_iteration(), CheckError);     // not begun
  sim.begin_iteration();
  EXPECT_THROW(sim.begin_iteration(), CheckError);   // double begin
  EXPECT_THROW(sim.add_work(5, 1), CheckError);      // bad machine
  EXPECT_THROW(sim.add_message(0, 9), CheckError);   // bad destination
  EXPECT_THROW(sim.finish(), CheckError);            // finish mid-iteration
}

TEST(BspSimulation, EmptyRunReport) {
  BspSimulation sim(3, unit_model());
  const RunReport r = sim.finish();
  EXPECT_DOUBLE_EQ(r.total_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(r.wait_ratio(), 0.0);
  EXPECT_EQ(r.total_work(), 0u);
}

}  // namespace
}  // namespace bpart::cluster
