// Heterogeneous-cluster cost model: per-machine speed factors.
#include <gtest/gtest.h>

#include "cluster/bsp.hpp"

namespace bpart::cluster {
namespace {

TEST(Heterogeneous, SpeedDefaultsToNominal) {
  CostModel m;
  EXPECT_DOUBLE_EQ(m.speed_of(0), 1.0);
  m.machine_speed = {2.0};
  EXPECT_DOUBLE_EQ(m.speed_of(0), 2.0);
  EXPECT_DOUBLE_EQ(m.speed_of(5), 1.0);  // beyond the vector: nominal
}

TEST(Heterogeneous, NonPositiveSpeedIgnored) {
  CostModel m;
  m.machine_speed = {0.0, -1.0};
  EXPECT_DOUBLE_EQ(m.speed_of(0), 1.0);
  EXPECT_DOUBLE_EQ(m.speed_of(1), 1.0);
}

TEST(Heterogeneous, StragglerStretchesComputeTime) {
  CostModel m;
  m.seconds_per_work_item = 1.0;
  m.seconds_per_message = 0.0;
  m.barrier_latency = 0.0;
  m.machine_speed = {1.0, 0.5};  // machine 1 is a 2x straggler

  BspSimulation sim(2, m);
  sim.begin_iteration();
  sim.add_work(0, 10);
  sim.add_work(1, 10);  // same items, double the time
  sim.end_iteration();
  const RunReport r = sim.finish();
  EXPECT_DOUBLE_EQ(r.iterations[0].machines[0].compute_seconds, 10.0);
  EXPECT_DOUBLE_EQ(r.iterations[0].machines[1].compute_seconds, 20.0);
  EXPECT_DOUBLE_EQ(r.iterations[0].machines[0].wait_seconds, 10.0);
  EXPECT_DOUBLE_EQ(r.iterations[0].duration_seconds, 20.0);
}

TEST(Heterogeneous, PerfectWorkBalanceStillWaitsOnStraggler) {
  // The insight behind the heterogeneity ablation: balanced *work* is not
  // balanced *time* once machines differ — the wait ratio floor is set by
  // the speed spread, independent of the partitioner.
  CostModel m;
  m.seconds_per_work_item = 1.0;
  m.barrier_latency = 0.0;
  m.machine_speed = {1.0, 1.0, 1.0, 0.5};
  BspSimulation sim(4, m);
  for (int it = 0; it < 3; ++it) {
    sim.begin_iteration();
    for (MachineId mm = 0; mm < 4; ++mm) sim.add_work(mm, 100);
    sim.end_iteration();
  }
  const RunReport r = sim.finish();
  // Three machines each wait half of every iteration: ratio = 3/4 * 1/2.
  EXPECT_NEAR(r.wait_ratio(), 0.375, 1e-9);
}

}  // namespace
}  // namespace bpart::cluster
