#include "cluster/threaded.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

namespace bpart::cluster {
namespace {

TEST(ThreadedBsp, HaltsWhenAllVoteHalt) {
  std::atomic<int> calls{0};
  const std::size_t steps = ThreadedBsp::run(
      4, 100, [&](MachineContext&, std::size_t) {
        ++calls;
        return Vote::kHalt;
      });
  EXPECT_EQ(steps, 1u);
  EXPECT_EQ(calls.load(), 4);
}

TEST(ThreadedBsp, RunsUntilMaxSupersteps) {
  const std::size_t steps = ThreadedBsp::run(
      2, 7, [](MachineContext&, std::size_t) { return Vote::kContinue; });
  EXPECT_EQ(steps, 7u);
}

TEST(ThreadedBsp, MessagesArriveNextSuperstep) {
  // Machine 0 sends its superstep number to machine 1; machine 1 verifies
  // it reads s-1 at superstep s.
  std::atomic<bool> ok{true};
  ThreadedBsp::run(2, 4, [&](MachineContext& ctx, std::size_t s) {
    if (ctx.self() == 0) {
      ctx.send(1, s);
    } else {
      if (s == 0 && !ctx.inbox().empty()) ok = false;
      if (s > 0) {
        const auto& from0 = ctx.inbox().from(0);
        if (ctx.inbox().size() != 1 || from0.size() != 1 ||
            from0[0].payload != s - 1)
          ok = false;
        else if (from0[0].from != 0)
          ok = false;
      }
    }
    return s + 1 < 4 ? Vote::kContinue : Vote::kHalt;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadedBsp, InFlightMessagesKeepRunAlive) {
  // Everyone votes halt immediately, but machine 0 sends one message in
  // superstep 0 — the run must execute superstep 1 to deliver it.
  std::atomic<int> delivered{0};
  const std::size_t steps =
      ThreadedBsp::run(2, 100, [&](MachineContext& ctx, std::size_t s) {
        if (ctx.self() == 0 && s == 0) ctx.send(1, 42);
        if (ctx.self() == 1 && !ctx.inbox().empty())
          delivered += static_cast<int>(ctx.inbox().size());
        return Vote::kHalt;
      });
  EXPECT_EQ(steps, 2u);
  EXPECT_EQ(delivered.load(), 1);
}

TEST(ThreadedBsp, TokenRing) {
  // Pass a token around a ring of machines; each machine increments it.
  constexpr MachineId kMachines = 5;
  std::atomic<std::uint64_t> final_token{0};
  ThreadedBsp::run(kMachines, 50, [&](MachineContext& ctx, std::size_t s) {
    if (s == 0 && ctx.self() == 0) {
      ctx.send(1, 1);
      return Vote::kHalt;
    }
    for (const Envelope& e : ctx.inbox()) {
      const std::uint64_t token = e.payload + 1;
      if (token >= 10) {
        final_token = token;
      } else {
        ctx.send((ctx.self() + 1) % kMachines, token);
      }
    }
    return Vote::kHalt;
  });
  EXPECT_EQ(final_token.load(), 10u);
}

TEST(ThreadedBsp, MailboxBuffersAreRecycled) {
  // Swap-based delivery: once the mailboxes have grown to working size, a
  // steady message load must not shrink their retained capacity (the old
  // copy+clear implementation freed and reallocated every superstep).
  constexpr std::size_t kPerStep = 64;
  std::vector<std::size_t> capacity_at(12, 0);
  ThreadedBsp::run(2, capacity_at.size(),
                   [&](MachineContext& ctx, std::size_t s) {
                     if (ctx.self() == 0)
                       for (std::size_t i = 0; i < kPerStep; ++i)
                         ctx.send(1, i);
                     else
                       capacity_at[s] = ctx.inbox_capacity();
                     return s + 1 < capacity_at.size() ? Vote::kContinue
                                                       : Vote::kHalt;
                   });
  // Both inbox generations warm after superstep 2; capacity never dips.
  ASSERT_GE(capacity_at[3], kPerStep);
  for (std::size_t s = 4; s < capacity_at.size(); ++s)
    EXPECT_GE(capacity_at[s], capacity_at[3]) << "superstep " << s;
}

TEST(ThreadedBsp, HonorsBpartThreadsOverride) {
  // With BPART_THREADS=2, eight machines multiplex onto two workers;
  // semantics (message delivery, supersteps) must be unchanged.
  ASSERT_EQ(setenv("BPART_THREADS", "2", 1), 0);
  constexpr MachineId kMachines = 8;
  std::atomic<std::uint64_t> delivered{0};
  const std::size_t steps =
      ThreadedBsp::run(kMachines, 10, [&](MachineContext& ctx, std::size_t s) {
        if (s == 0) ctx.send((ctx.self() + 1) % kMachines, ctx.self());
        for (const Envelope& e : ctx.inbox()) {
          delivered += e.payload;
          if (e.from != (ctx.self() + kMachines - 1) % kMachines)
            delivered = 1u << 30;  // wrong sender: poison the total
        }
        return Vote::kHalt;
      });
  ASSERT_EQ(unsetenv("BPART_THREADS"), 0);
  EXPECT_EQ(steps, 2u);
  EXPECT_EQ(delivered.load(), kMachines * (kMachines - 1) / 2);
}

TEST(ThreadedBsp, SingleMachine) {
  int count = 0;
  const std::size_t steps =
      ThreadedBsp::run(1, 10, [&](MachineContext& ctx, std::size_t s) {
        ++count;
        if (s < 2) {
          ctx.send(0, s);  // self-messages also keep the run alive
          return Vote::kHalt;
        }
        return Vote::kHalt;
      });
  EXPECT_EQ(steps, 3u);  // 0 sends, 1 delivers+sends, 2 delivers
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace bpart::cluster
