#include "dist/channel.hpp"

#include <gtest/gtest.h>

namespace bpart::dist {
namespace {

TEST(Channel, MessagesInvisibleUntilFlip) {
  Channel<int> ch(2);
  ch.send(0, 1, 7);
  EXPECT_EQ(ch.incoming_count(1), 0u) << "delivery before the barrier";
  EXPECT_EQ(ch.flip(), 1u);
  ASSERT_EQ(ch.incoming_count(1), 1u);
  EXPECT_EQ(ch.incoming(1, 0)[0], 7);
  // Consumed at the next flip; nothing new was sent.
  EXPECT_EQ(ch.flip(), 0u);
  EXPECT_EQ(ch.incoming_count(1), 0u);
}

TEST(Channel, PreservesSendOrderAndSourceSegments) {
  Channel<int> ch(3);
  ch.send(0, 2, 1);
  ch.send(0, 2, 2);
  ch.send(1, 2, 3);
  ch.flip();
  const auto from0 = ch.incoming(2, 0);
  ASSERT_EQ(from0.size(), 2u);
  EXPECT_EQ(from0[0], 1);
  EXPECT_EQ(from0[1], 2);
  ASSERT_EQ(ch.incoming(2, 1).size(), 1u);
  EXPECT_EQ(ch.incoming(2, 1)[0], 3);

  int sum = 0;
  ch.drain(2, [&](int m) { sum += m; });
  EXPECT_EQ(sum, 6);
}

TEST(Channel, RecyclesBufferCapacityAcrossFlips) {
  Channel<std::uint64_t> ch(2);
  constexpr std::size_t kPerStep = 100;
  auto pump = [&] {
    for (std::size_t i = 0; i < kPerStep; ++i) ch.send(0, 1, i);
    ch.flip();
  };
  pump();
  pump();  // both generations now warm
  const std::size_t warm = ch.outgoing_capacity(0);
  ASSERT_GE(warm, 2 * kPerStep);
  for (int step = 0; step < 20; ++step) {
    pump();
    EXPECT_EQ(ch.outgoing_capacity(0), warm) << "reallocated at step " << step;
  }
}

TEST(Channel, SelfSendDeliversNextSuperstep) {
  Channel<int> ch(1);
  ch.send(0, 0, 5);
  EXPECT_EQ(ch.incoming_count(0), 0u);
  EXPECT_EQ(ch.flip(), 1u);
  EXPECT_EQ(ch.incoming(0, 0)[0], 5);
}

}  // namespace
}  // namespace bpart::dist
