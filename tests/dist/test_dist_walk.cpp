#include "walk/dist_walk.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"

namespace bpart::walk {
namespace {

// Directed cycle: every vertex has out-degree 1, so walks never dead-end
// and step totals are exact.
graph::Graph cycle_graph(graph::VertexId n) {
  graph::EdgeList edges(n);
  edges.reserve(n);
  for (graph::VertexId v = 0; v < n; ++v) edges.add(v, (v + 1) % n);
  return graph::Graph::from_edges(edges);
}

TEST(DistWalk, StepConservationOnCycle) {
  constexpr graph::VertexId kN = 1000;
  const graph::Graph g = cycle_graph(kN);
  const partition::Partition parts =
      partition::create("chunk-v")->partition(g, 4);

  ThreadedWalkConfig cfg;
  cfg.length = 12;
  cfg.walks_per_vertex = 3;
  const DistWalkReport r = run_simple_walks_dist(g, parts, cfg);

  // No dead ends: every walker takes exactly `length` steps.
  EXPECT_EQ(r.total_steps,
            static_cast<std::uint64_t>(kN) * cfg.walks_per_vertex * cfg.length);
  // Contiguous 250-vertex blocks, 12-step walks: every walker starting near
  // a block boundary ships at least once.
  EXPECT_GT(r.message_walks, 0u);
  EXPECT_GT(r.supersteps, 1u);

  // The measured report counts exactly the shipped walkers as messages.
  std::uint64_t msgs = 0;
  for (const auto& it : r.run.iterations)
    for (const auto& m : it.machines) msgs += m.messages_sent;
  EXPECT_EQ(msgs, r.message_walks);
  EXPECT_EQ(r.run.num_machines, 4u);
  EXPECT_EQ(r.run.iterations.size(), r.supersteps);
}

TEST(DistWalk, SinglePartitionNeverShips) {
  const graph::Graph g = cycle_graph(128);
  const partition::Partition parts =
      partition::create("chunk-v")->partition(g, 1);
  ThreadedWalkConfig cfg;
  cfg.length = 5;
  const DistWalkReport r = run_simple_walks_dist(g, parts, cfg);
  EXPECT_EQ(r.total_steps, 128u * 5u);
  EXPECT_EQ(r.message_walks, 0u);
  EXPECT_EQ(r.supersteps, 1u);  // all walks complete in the first superstep
}

TEST(DistWalk, MatchesThreadedEngineExactly) {
  // Both engines draw from the counter streams keyed (seed, walker, step),
  // so trajectories — not just totals — are identical: step AND
  // message-walk counts must agree exactly.
  const graph::Graph g = cycle_graph(512);
  const partition::Partition parts =
      partition::create("chunk-v")->partition(g, 4);
  ThreadedWalkConfig cfg;
  cfg.length = 8;
  cfg.walks_per_vertex = 2;
  const DistWalkReport dist = run_simple_walks_dist(g, parts, cfg);
  const ThreadedWalkReport threaded =
      run_simple_walks_threaded(g, parts, cfg);
  EXPECT_EQ(dist.total_steps, threaded.total_steps);
  EXPECT_EQ(dist.message_walks, threaded.message_walks);
}

TEST(DistWalk, ExecPathMatchesSequentialDrain) {
  // A branching graph so every step actually draws. Counter streams plus
  // chunk-order channel flushes make the exec path reproduce the
  // sequential drain exactly at every thread count.
  graph::WattsStrogatzConfig wcfg;
  wcfg.num_vertices = 512;
  wcfg.k = 4;
  wcfg.beta = 0.2;
  wcfg.seed = 5;
  const graph::Graph g = graph::Graph::from_edges(graph::watts_strogatz(wcfg));
  const partition::Partition parts =
      partition::create("chunk-v")->partition(g, 4);
  ThreadedWalkConfig cfg;
  cfg.length = 10;
  cfg.walks_per_vertex = 2;
  const DistWalkReport base = run_simple_walks_dist(g, parts, cfg);
  for (const unsigned threads : {1u, 2u, 4u}) {
    cfg.exec.threads = threads;
    const DistWalkReport got = run_simple_walks_dist(g, parts, cfg);
    EXPECT_EQ(got.total_steps, base.total_steps) << threads << " threads";
    EXPECT_EQ(got.message_walks, base.message_walks) << threads << " threads";
    EXPECT_EQ(got.supersteps, base.supersteps) << threads << " threads";
  }
}

}  // namespace
}  // namespace bpart::walk
