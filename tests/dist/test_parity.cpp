// The acceptance gate for the dist:: runtime: for EVERY registered
// partitioner, the distributed apps running over >= 4 machines must agree
// with the single-threaded accounting engines — exactly for CC and SSSP
// (monotone min fixpoints), to 1e-10 L-inf for PageRank (double-precision
// contributions, machine-dependent summation order).
#include <gtest/gtest.h>

#include <cmath>

#include "dist/components.hpp"
#include "dist/pagerank.hpp"
#include "dist/sssp.hpp"
#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "engine/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"

namespace bpart::dist {
namespace {

constexpr partition::PartId kMachines = 4;

struct Baselines {
  engine::PageRankResult pr;
  engine::ComponentsResult cc;
  engine::SsspResult sssp;
};

Baselines baselines_for(const graph::Graph& g) {
  // Engine results do not depend on the partition; any one will do.
  const partition::Partition parts =
      partition::create("hash")->partition(g, kMachines);
  Baselines b;
  b.pr = engine::pagerank(g, parts);
  b.cc = engine::connected_components(g, parts);
  b.sssp = engine::sssp(g, parts, /*source=*/0);
  return b;
}

class DistParity : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    // Directed random graph: dangling vertices, asymmetric reachability.
    graph::ErdosRenyiConfig er;
    er.num_vertices = 1 << 11;
    er.num_edges = 1 << 14;
    er.seed = 3;
    random_graph_ =
        new graph::Graph(graph::Graph::from_edges(graph::erdos_renyi(er)));
    random_base_ = new Baselines(baselines_for(*random_graph_));

    // Symmetrized power-law graph: hubs stress the ghost aggregation.
    graph::RmatConfig rm;
    rm.scale = 10;
    rm.edge_factor = 8;
    powerlaw_graph_ = new graph::Graph(
        graph::Graph::from_edges_symmetric(graph::rmat(rm)));
    powerlaw_base_ = new Baselines(baselines_for(*powerlaw_graph_));
  }
  static void TearDownTestSuite() {
    delete random_graph_;
    delete random_base_;
    delete powerlaw_graph_;
    delete powerlaw_base_;
    random_graph_ = powerlaw_graph_ = nullptr;
    random_base_ = powerlaw_base_ = nullptr;
  }

  static void check_parity(const graph::Graph& g, const Baselines& base,
                           const partition::Partition& parts) {
    for (const PrMode mode : {PrMode::kPush, PrMode::kPull}) {
      const engine::PageRankResult got = pagerank(g, parts, {}, mode);
      double max_err = 0;
      for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
        max_err = std::max(max_err, std::abs(got.rank[v] - base.pr.rank[v]));
      EXPECT_LE(max_err, 1e-10)
          << (mode == PrMode::kPush ? "push" : "pull") << " PageRank";
      EXPECT_GT(got.run.iterations.size(), 0u);
    }

    const engine::ComponentsResult cc = connected_components(g, parts);
    EXPECT_EQ(cc.label, base.cc.label);
    EXPECT_EQ(cc.num_components, base.cc.num_components);

    const engine::SsspResult ss = sssp(g, parts, /*source=*/0);
    EXPECT_EQ(ss.distance, base.sssp.distance);
  }

  static graph::Graph* random_graph_;
  static graph::Graph* powerlaw_graph_;
  static Baselines* random_base_;
  static Baselines* powerlaw_base_;
};

graph::Graph* DistParity::random_graph_ = nullptr;
graph::Graph* DistParity::powerlaw_graph_ = nullptr;
Baselines* DistParity::random_base_ = nullptr;
Baselines* DistParity::powerlaw_base_ = nullptr;

TEST_P(DistParity, RandomGraph) {
  const partition::Partition parts =
      partition::create(GetParam())->partition(*random_graph_, kMachines);
  check_parity(*random_graph_, *random_base_, parts);
}

TEST_P(DistParity, PowerLawGraph) {
  const partition::Partition parts =
      partition::create(GetParam())->partition(*powerlaw_graph_, kMachines);
  check_parity(*powerlaw_graph_, *powerlaw_base_, parts);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, DistParity,
    ::testing::ValuesIn(partition::all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace bpart::dist
