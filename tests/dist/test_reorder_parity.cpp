// Reordering round-trip at the dist tier: the simulated multi-machine
// runtime (ghost exchange, per-machine shard state, first-touch init) must
// be oblivious to the vertex id order — running on a relabeled graph and
// un-permuting at the boundary agrees with the original-order run. PageRank
// to 1e-8 L-inf (the relabel reorders per-destination gather folds), CC
// exactly up to the label alphabet (min-id labels live in the active id
// space, so structure is compared through a bijection).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "dist/components.hpp"
#include "dist/pagerank.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "partition/registry.hpp"

namespace bpart::dist {
namespace {

constexpr partition::PartId kMachines = 4;

template <typename T>
std::vector<T> unpermute(const std::vector<T>& vals,
                         const std::vector<graph::VertexId>& perm) {
  std::vector<T> out(vals.size());
  for (graph::VertexId v = 0; v < perm.size(); ++v) out[v] = vals[perm[v]];
  return out;
}

void expect_same_partition_structure(const std::vector<graph::VertexId>& a,
                                     const std::vector<graph::VertexId>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<graph::VertexId, graph::VertexId> fwd, bwd;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [fit, unused_f] = fwd.try_emplace(a[v], b[v]);
    ASSERT_EQ(fit->second, b[v]) << "vertex " << v;
    const auto [bit, unused_b] = bwd.try_emplace(b[v], a[v]);
    ASSERT_EQ(bit->second, a[v]) << "vertex " << v;
  }
}

TEST(DistReorderParity, AppsUnpermuteToOriginalOrderResults) {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 1 << 11;
  cfg.avg_degree = 10;
  cfg.num_communities = 12;
  cfg.seed = 29;
  const graph::Graph g =
      graph::Graph::from_edges_symmetric(graph::community_scale_free(cfg));
  const partition::Partition parts =
      partition::create("bpart")->partition(g, kMachines);
  const engine::PageRankResult base_pr = pagerank(g, parts);
  const engine::ComponentsResult base_cc = connected_components(g, parts);

  const struct {
    std::string name;
    std::vector<graph::VertexId> perm;
  } orders[] = {
      {"degree", graph::degree_order(g)},
      {"random", graph::random_order(g.num_vertices(), 41)},
  };
  for (const auto& order : orders) {
    const graph::Graph h = graph::apply_permutation(g, order.perm);
    const partition::Partition hparts =
        partition::create("bpart")->partition(h, kMachines);

    const std::vector<double> pr =
        unpermute(pagerank(h, hparts).rank, order.perm);
    double max_err = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
      max_err = std::max(max_err, std::abs(pr[v] - base_pr.rank[v]));
    EXPECT_LE(max_err, 1e-8) << order.name;

    const engine::ComponentsResult cc = connected_components(h, hparts);
    EXPECT_EQ(cc.num_components, base_cc.num_components) << order.name;
    expect_same_partition_structure(unpermute(cc.label, order.perm),
                                    base_cc.label);
  }
}

}  // namespace
}  // namespace bpart::dist
