#include "dist/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

namespace bpart::dist {
namespace {

using Msg = std::uint64_t;

TEST(DistRuntime, HaltsOnQuiescence) {
  std::atomic<int> calls{0};
  RuntimeConfig cfg;
  const RunResult r =
      Runtime<Msg>::run(4, cfg, [&](Runtime<Msg>::Context&, std::size_t) {
        ++calls;
        return Vote::kHalt;
      });
  EXPECT_EQ(r.supersteps, 1u);
  EXPECT_EQ(calls.load(), 4);
}

TEST(DistRuntime, StopsAtMaxSupersteps) {
  RuntimeConfig cfg;
  cfg.max_supersteps = 6;
  const RunResult r = Runtime<Msg>::run(
      2, cfg, [](Runtime<Msg>::Context&, std::size_t) { return Vote::kContinue; });
  EXPECT_EQ(r.supersteps, 6u);
  EXPECT_EQ(r.report.iterations.size(), 6u);
}

TEST(DistRuntime, TokenRingAndMeasuredReport) {
  constexpr MachineId kMachines = 5;
  constexpr std::uint64_t kTarget = 12;
  std::atomic<std::uint64_t> final_token{0};
  RuntimeConfig cfg;
  const RunResult r = Runtime<Msg>::run(
      kMachines, cfg, [&](Runtime<Msg>::Context& ctx, std::size_t s) {
        if (s == 0 && ctx.self() == 0) ctx.send(1, 1);
        ctx.for_each_message([&](Msg token) {
          ++token;
          ctx.add_work(1);
          if (token >= kTarget)
            final_token.store(token);
          else
            ctx.send((ctx.self() + 1) % kMachines, token);
        });
        return Vote::kHalt;  // in-flight token keeps the run alive
      });
  EXPECT_EQ(final_token.load(), kTarget);
  EXPECT_EQ(r.supersteps, kTarget);  // one hop per superstep + final drain

  // Report shape: one row per superstep, one entry per machine, measured
  // fields populated and byte counts consistent with the message size.
  EXPECT_EQ(r.report.num_machines, kMachines);
  ASSERT_EQ(r.report.iterations.size(), r.supersteps);
  std::uint64_t msgs = 0;
  for (const auto& it : r.report.iterations) {
    ASSERT_EQ(it.machines.size(), kMachines);
    for (const auto& m : it.machines) {
      EXPECT_GE(m.compute_seconds, 0.0);
      EXPECT_GE(m.wait_seconds, 0.0);
      EXPECT_EQ(m.bytes_sent, m.messages_sent * sizeof(Msg));
      EXPECT_EQ(m.bytes_received, m.messages_received * sizeof(Msg));
      msgs += m.messages_sent;
    }
  }
  // The token ships once per increment except the last (stored locally).
  EXPECT_EQ(msgs, kTarget - 1);
  EXPECT_EQ(r.report.total_bytes_sent(), msgs * sizeof(Msg));
  EXPECT_EQ(r.report.compute_seconds_per_machine().size(), kMachines);
}

TEST(DistRuntime, SelfSendsAreNotNetworkTraffic) {
  RuntimeConfig cfg;
  const RunResult r = Runtime<Msg>::run(
      2, cfg, [&](Runtime<Msg>::Context& ctx, std::size_t s) {
        if (s == 0) ctx.send(ctx.self(), 1);  // local delivery
        return Vote::kHalt;
      });
  EXPECT_EQ(r.supersteps, 2u);  // still delivered next superstep
  for (const auto& it : r.report.iterations)
    for (const auto& m : it.machines) EXPECT_EQ(m.messages_sent, 0u);
}

TEST(DistRuntime, MarkCommSplitsComputeAndComm) {
  RuntimeConfig cfg;
  const RunResult r = Runtime<Msg>::run(
      1, cfg, [&](Runtime<Msg>::Context& ctx, std::size_t) {
        ctx.add_work(10);
        ctx.mark_comm();
        return Vote::kHalt;
      });
  const auto& m = r.report.iterations.at(0).machines.at(0);
  EXPECT_EQ(m.work_items, 10u);
  EXPECT_GE(m.compute_seconds, 0.0);
  EXPECT_GE(m.comm_seconds, 0.0);
}

TEST(DistRuntime, OnBarrierRunsOncePerSuperstep) {
  std::vector<std::size_t> seen;
  RuntimeConfig cfg;
  cfg.max_supersteps = 4;
  cfg.on_barrier = [&](std::size_t done) { seen.push_back(done); };
  Runtime<Msg>::run(3, cfg, [](Runtime<Msg>::Context&, std::size_t) {
    return Vote::kContinue;
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(DistRuntime, ThreadsOverrideMultiplexesMachines) {
  // 8 machines on 2 explicit worker threads: identical semantics.
  constexpr MachineId kMachines = 8;
  RuntimeConfig cfg;
  cfg.threads = 2;
  std::atomic<std::uint64_t> delivered{0};
  const RunResult r = Runtime<Msg>::run(
      kMachines, cfg, [&](Runtime<Msg>::Context& ctx, std::size_t s) {
        if (s == 0) ctx.send((ctx.self() + 1) % kMachines, ctx.self());
        ctx.for_each_message([&](Msg v) { delivered += v; });
        return Vote::kHalt;
      });
  EXPECT_EQ(r.supersteps, 2u);
  EXPECT_EQ(delivered.load(), kMachines * (kMachines - 1) / 2);
}

TEST(DistRuntime, HonorsBpartThreadsEnv) {
  ASSERT_EQ(setenv("BPART_THREADS", "3", 1), 0);
  std::atomic<std::uint64_t> delivered{0};
  constexpr MachineId kMachines = 7;
  RuntimeConfig cfg;
  const RunResult r = Runtime<Msg>::run(
      kMachines, cfg, [&](Runtime<Msg>::Context& ctx, std::size_t s) {
        if (s == 0) ctx.send((ctx.self() + 1) % kMachines, 1);
        ctx.for_each_message([&](Msg v) { delivered += v; });
        return Vote::kHalt;
      });
  ASSERT_EQ(unsetenv("BPART_THREADS"), 0);
  EXPECT_EQ(r.supersteps, 2u);
  EXPECT_EQ(delivered.load(), kMachines);
}

TEST(FrontierMode, TwentyToOneSwitch) {
  EXPECT_EQ(choose_frontier_mode(0, 1000), FrontierMode::kSparse);
  EXPECT_EQ(choose_frontier_mode(50, 1000), FrontierMode::kSparse);
  EXPECT_EQ(choose_frontier_mode(51, 1000), FrontierMode::kDense);
  EXPECT_EQ(choose_frontier_mode(1000, 1000), FrontierMode::kDense);
}

}  // namespace
}  // namespace bpart::dist
