#include "dyn/delta_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace bpart::dyn {
namespace {

using graph::Edge;
using graph::EdgeList;
using graph::Graph;
using graph::VertexId;

EdgeList base_edges() {
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(3, 1);
  el.set_num_vertices(5);  // 4 is isolated.
  return el;
}

std::vector<VertexId> sorted_out(const DeltaGraph& dg, VertexId v) {
  std::vector<VertexId> out;
  dg.for_out_neighbors(v, [&](VertexId u) { out.push_back(u); });
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<VertexId> sorted_in(const DeltaGraph& dg, VertexId v) {
  std::vector<VertexId> in;
  dg.for_in_neighbors(v, [&](VertexId u) { in.push_back(u); });
  std::sort(in.begin(), in.end());
  return in;
}

TEST(DeltaGraph, OverlayMatchesFullRebuild) {
  EdgeList all = base_edges();
  DeltaGraph dg(Graph::from_edges(base_edges()));

  const std::vector<Edge> batch1{{0, 3}, {4, 2}, {1, 0}};
  const std::vector<Edge> batch2{{2, 4}, {0, 2}};
  EXPECT_EQ(dg.apply(batch1), 0u);
  EXPECT_EQ(dg.apply(batch2), 0u);
  for (const Edge& e : batch1) all.add(e.src, e.dst);
  for (const Edge& e : batch2) all.add(e.src, e.dst);

  const Graph full = Graph::from_edges(all);
  ASSERT_EQ(dg.num_vertices(), full.num_vertices());
  ASSERT_EQ(dg.num_edges(), full.num_edges());
  for (VertexId v = 0; v < full.num_vertices(); ++v) {
    EXPECT_EQ(dg.out_degree(v), full.out_degree(v)) << "vertex " << v;
    EXPECT_EQ(dg.in_degree(v), full.in_degree(v)) << "vertex " << v;
    auto expect_out = std::vector<VertexId>(full.out_neighbors(v).begin(),
                                            full.out_neighbors(v).end());
    auto expect_in = std::vector<VertexId>(full.in_neighbors(v).begin(),
                                           full.in_neighbors(v).end());
    std::sort(expect_out.begin(), expect_out.end());
    std::sort(expect_in.begin(), expect_in.end());
    EXPECT_EQ(sorted_out(dg, v), expect_out) << "vertex " << v;
    EXPECT_EQ(sorted_in(dg, v), expect_in) << "vertex " << v;
  }
}

TEST(DeltaGraph, CompactMatchesFromEdgesBitExactly) {
  // Both with_appended and from_edges leave every adjacency run sorted, so
  // compaction must reproduce the from-scratch CSR exactly, arrays and all.
  EdgeList all = base_edges();
  DeltaGraph dg(Graph::from_edges(base_edges()));

  const std::vector<Edge> batch{{4, 0}, {0, 4}, {2, 3}, {0, 2}};
  dg.apply(batch);
  for (const Edge& e : batch) all.add(e.src, e.dst);

  EXPECT_EQ(dg.compact(), batch.size());
  EXPECT_TRUE(dg.delta_edges().empty());
  EXPECT_EQ(dg.delta_fraction(), 0.0);

  const Graph full = Graph::from_edges(all);
  const Graph& compacted = dg.base();
  ASSERT_EQ(compacted.num_vertices(), full.num_vertices());
  ASSERT_EQ(compacted.num_edges(), full.num_edges());
  EXPECT_TRUE(std::ranges::equal(compacted.out_offsets(), full.out_offsets()));
  EXPECT_TRUE(std::ranges::equal(compacted.out_targets(), full.out_targets()));

  // Queries keep working against the folded tier; a second compact is a
  // no-op.
  EXPECT_EQ(dg.out_degree(0), full.out_degree(0));
  EXPECT_EQ(dg.compact(), 0u);
}

TEST(DeltaGraph, ArrivalsBeyondBoundCreateVertices) {
  DeltaGraph dg(Graph::from_edges(base_edges()));
  ASSERT_EQ(dg.num_vertices(), 5u);

  // Endpoint 8 materializes 5..8 (gap ids included, like EdgeList::add).
  const std::vector<Edge> batch{{1, 8}, {8, 0}};
  EXPECT_EQ(dg.apply(batch), 4u);
  EXPECT_EQ(dg.num_vertices(), 9u);
  EXPECT_EQ(dg.out_degree(8), 1u);
  EXPECT_EQ(dg.in_degree(8), 1u);
  EXPECT_EQ(dg.out_degree(6), 0u);  // Gap vertex exists, isolated.
  EXPECT_EQ(sorted_out(dg, 8), (std::vector<VertexId>{0}));

  // Compaction carries the grown vertex set into the CSR tier.
  dg.compact();
  EXPECT_EQ(dg.base().num_vertices(), 9u);
  EXPECT_EQ(dg.base().out_degree(8), 1u);
}

TEST(DeltaGraph, WithAppendedValidatesItsContract) {
  const Graph g = Graph::from_edges(base_edges());
  const std::vector<Edge> out_of_range{{0, 7}};
  EXPECT_THROW((void)g.with_appended(out_of_range, 5), CheckError);
  const std::vector<Edge> fine{{0, 3}};
  EXPECT_THROW((void)g.with_appended(fine, 4), CheckError);  // Shrink.

  const Graph grown = g.with_appended(fine, 7);
  EXPECT_EQ(grown.num_vertices(), 7u);
  EXPECT_EQ(grown.num_edges(), g.num_edges() + 1);
}

TEST(DeltaGraph, DeltaFractionTracksOverlaySize) {
  graph::CommunityGraphConfig gen;
  gen.num_vertices = 1 << 8;
  gen.avg_degree = 8;
  gen.num_communities = 4;
  gen.seed = 3;
  DeltaGraph dg(Graph::from_edges(graph::community_scale_free(gen)));

  const double before = dg.delta_fraction();
  EXPECT_EQ(before, 0.0);
  const std::vector<Edge> batch{{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  dg.apply(batch);
  EXPECT_DOUBLE_EQ(dg.delta_fraction(),
                   4.0 / static_cast<double>(dg.base().num_edges()));
  EXPECT_EQ(dg.delta_edges().size(), 4u);
}

}  // namespace
}  // namespace bpart::dyn
