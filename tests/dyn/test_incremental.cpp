#include "partition/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner.hpp"
#include "partition/registry.hpp"

namespace bpart::partition {
namespace {

graph::Graph community_graph(graph::VertexId n, std::uint64_t seed) {
  graph::CommunityGraphConfig gen;
  gen.num_vertices = n;
  gen.avg_degree = 10;
  gen.num_communities = 8;
  gen.seed = seed;
  graph::EdgeList el = graph::community_scale_free(gen);
  el.remove_self_loops();
  return graph::Graph::from_edges_symmetric(el);
}

TEST(IncrementalScorer, ReplaysSequentialStreamExactly) {
  // The scorer's pick() claims to be the sequential offline scan, one
  // vertex at a time against exact totals. Replaying the whole stream
  // through it must therefore reproduce greedy_stream_partition bit for
  // bit.
  const graph::Graph g = community_graph(1 << 10, 17);
  const PartId k = 6;
  StreamConfig cfg;
  cfg.balance_weight_c = 0.5;
  cfg.batch_size = 0;       // Force the sequential pass.
  cfg.refine_passes = 0;    // No restream after it.

  std::vector<graph::VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  const Partition expected = greedy_stream_partition(g, order, k, cfg);

  IncrementalScorer scorer(k, cfg);
  scorer.calibrate(g.num_vertices(), g.num_edges());
  std::vector<PartId> assign(g.num_vertices(), kUnassigned);
  std::vector<PartId> neighbor_parts;
  for (graph::VertexId v : order) {
    neighbor_parts.clear();
    for (graph::VertexId u : g.out_neighbors(v))
      if (assign[u] != kUnassigned) neighbor_parts.push_back(assign[u]);
    for (graph::VertexId u : g.in_neighbors(v))
      if (assign[u] != kUnassigned) neighbor_parts.push_back(assign[u]);
    const PartId part = scorer.pick(neighbor_parts);
    ASSERT_EQ(part, expected[v]) << "diverged at vertex " << v;
    assign[v] = part;
    scorer.add(part, g.out_degree(v));
  }
}

TEST(IncrementalScorer, FromPartitionSeedsExactLoads) {
  const graph::Graph g = community_graph(1 << 8, 5);
  const Partition p = create("bpart")->partition(g, 4);
  const auto scorer = IncrementalScorer::from_partition(g, p);

  const auto vertex_counts = p.vertex_counts();
  const auto edge_counts = p.edge_counts(g);
  ASSERT_EQ(scorer.num_parts(), 4u);
  for (PartId i = 0; i < 4; ++i) {
    EXPECT_EQ(scorer.loads()[i].vertices, vertex_counts[i]);
    EXPECT_EQ(scorer.loads()[i].edges, edge_counts[i]);
  }
}

TEST(IncrementalScorer, MoveAndAddEdgesAdjustLoads) {
  IncrementalScorer s(3);
  s.calibrate(10, 20);
  s.add(0, 4);
  s.add(1, 2);
  EXPECT_EQ(s.loads()[0].vertices, 1u);
  EXPECT_EQ(s.loads()[0].edges, 4u);

  s.move(0, 2, 4);
  EXPECT_EQ(s.loads()[0].vertices, 0u);
  EXPECT_EQ(s.loads()[0].edges, 0u);
  EXPECT_EQ(s.loads()[2].vertices, 1u);
  EXPECT_EQ(s.loads()[2].edges, 4u);

  s.add_edges(2, 3);
  EXPECT_EQ(s.loads()[2].edges, 7u);
  s.move(2, 2, 4);  // Self-move is a no-op.
  EXPECT_EQ(s.loads()[2].vertices, 1u);
}

class BudgetedRestreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = community_graph(1 << 12, 29);
    // A hash partition ignores structure entirely: plenty of positive-gain
    // moves for the restream to find.
    bad_ = create("hash")->partition(g_, k_);
    all_.resize(g_.num_vertices());
    std::iota(all_.begin(), all_.end(), 0);
    cfg_.balance_weight_c = 0.5;
  }

  graph::Graph g_;
  Partition bad_;
  std::vector<graph::VertexId> all_;
  StreamConfig cfg_;
  static constexpr PartId k_ = 8;
};

TEST_F(BudgetedRestreamTest, RespectsBudgetAndImprovesCut) {
  Partition p = bad_;
  const double cut_before = edge_cut_ratio(g_, p);

  const RestreamBudgetResult small = budgeted_restream(g_, all_, 5, cfg_, p);
  EXPECT_LE(small.moved, 5u);
  EXPECT_EQ(small.examined, all_.size());
  EXPECT_GE(small.eligible, small.moved);

  // Loop rounds to a fixed point under a generous budget; on a hash
  // partition of a community graph the cut must drop substantially.
  for (int round = 0; round < 50; ++round)
    if (budgeted_restream(g_, all_, 1 << 20, cfg_, p).moved == 0) break;
  const double cut_after = edge_cut_ratio(g_, p);
  EXPECT_LT(cut_after, cut_before * 0.9);
  EXPECT_TRUE(p.fully_assigned());
}

TEST_F(BudgetedRestreamTest, ResultIndependentOfThreadCount) {
  // > 1024 candidates, so the parallel scoring path engages; gains are
  // pure functions of the frozen snapshot and the ranking is total, so the
  // worker count must not change anything.
  std::vector<Partition> results;
  for (unsigned threads : {1u, 2u, 8u}) {
    StreamConfig cfg = cfg_;
    cfg.threads = threads;
    Partition p = bad_;
    const RestreamBudgetResult r = budgeted_restream(g_, all_, 64, cfg, p);
    EXPECT_EQ(r.moved, 64u) << "hash partition should saturate the budget";
    results.push_back(p);
  }
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_TRUE(std::ranges::equal(results[0].assignment(),
                                   results[i].assignment()))
        << "thread count " << i << " diverged";
}

TEST_F(BudgetedRestreamTest, IgnoresBogusAndDuplicateCandidates) {
  Partition p = bad_;
  const std::vector<graph::VertexId> cands{7, 7, 7, g_.num_vertices(),
                                           g_.num_vertices() + 100, 9};
  const RestreamBudgetResult r = budgeted_restream(g_, cands, 10, cfg_, p);
  EXPECT_EQ(r.examined, 2u);  // 7 and 9, deduplicated; out-of-range dropped.
  EXPECT_LE(r.moved, 2u);

  // Unassigned candidates are skipped, not moved.
  Partition partial(g_.num_vertices(), k_);
  for (graph::VertexId v = 0; v < g_.num_vertices() / 2; ++v)
    partial.assign(v, bad_[v]);
  const graph::VertexId hole = g_.num_vertices() - 1;
  const std::vector<graph::VertexId> unassigned{hole};
  const RestreamBudgetResult r2 =
      budgeted_restream(g_, unassigned, 10, cfg_, partial);
  EXPECT_EQ(r2.examined, 0u);
  EXPECT_EQ(partial[hole], kUnassigned);
}

TEST_F(BudgetedRestreamTest, ZeroBudgetMovesNothing) {
  Partition p = bad_;
  const RestreamBudgetResult r = budgeted_restream(g_, all_, 0, cfg_, p);
  EXPECT_EQ(r.moved, 0u);
  EXPECT_TRUE(std::ranges::equal(p.assignment(), bad_.assignment()));
}

}  // namespace
}  // namespace bpart::partition
