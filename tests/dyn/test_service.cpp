#include "dyn/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"

namespace bpart::dyn {
namespace {

using graph::Edge;
using graph::VertexId;
using partition::kUnassigned;
using partition::PartId;

struct Scenario {
  graph::Graph base;
  std::vector<std::vector<Edge>> batches;
};

/// Deterministic arrival trace: generate one community graph, keep the
/// first `base_fraction` of its undirected pairs as the base CSR and replay
/// the rest (both directions per pair, batched) as arrivals — so the final
/// graph is symmetric and self-loop free, like the paper's datasets.
Scenario make_scenario(VertexId n, std::uint64_t seed,
                       std::size_t batch_pairs = 256,
                       double base_fraction = 0.8) {
  graph::CommunityGraphConfig gen;
  gen.num_vertices = n;
  gen.avg_degree = 10;
  gen.num_communities = 8;
  gen.seed = seed;
  graph::EdgeList el = graph::community_scale_free(gen);
  el.remove_self_loops();
  el.symmetrize();

  // Undirected pairs (src < dst), in a deterministic but id-mixed order.
  std::vector<Edge> pairs;
  for (std::size_t i = 0; i < el.size(); ++i)
    if (el[i].src < el[i].dst) pairs.push_back(el[i]);
  std::sort(pairs.begin(), pairs.end(), [](const Edge& a, const Edge& b) {
    const std::uint64_t ha = (a.src * 2654435761u) ^ a.dst;
    const std::uint64_t hb = (b.src * 2654435761u) ^ b.dst;
    return ha != hb ? ha < hb
                    : std::pair(a.src, a.dst) < std::pair(b.src, b.dst);
  });

  const std::size_t split =
      static_cast<std::size_t>(static_cast<double>(pairs.size()) *
                               base_fraction);
  graph::EdgeList base;
  for (std::size_t i = 0; i < split; ++i)
    base.add_undirected(pairs[i].src, pairs[i].dst);

  Scenario s;
  s.base = graph::Graph::from_edges(base);
  for (std::size_t i = split; i < pairs.size(); i += batch_pairs) {
    std::vector<Edge> batch;
    for (std::size_t j = i; j < std::min(i + batch_pairs, pairs.size()); ++j) {
      batch.push_back(pairs[j]);
      batch.push_back({pairs[j].dst, pairs[j].src});
    }
    s.batches.push_back(std::move(batch));
  }
  return s;
}

ServiceConfig config_with_budget(std::uint64_t budget) {
  ServiceConfig cfg;
  cfg.migration_budget = budget;
  return cfg;
}

TEST(PartitionService, ApplyPublishesAssignmentsAndEpochs) {
  const Scenario s = make_scenario(1 << 10, 7);
  const partition::Partition p =
      partition::create("bpart")->partition(s.base, 4);
  PartitionService svc(s.base, p, config_with_budget(64));

  EXPECT_EQ(svc.epoch(), 0u);
  for (VertexId v = 0; v < s.base.num_vertices(); ++v)
    EXPECT_EQ(svc.lookup(v), p[v]);

  std::uint64_t expected_epoch = 0;
  std::uint64_t applied = 0;
  for (const auto& batch : s.batches) {
    const UpdateStats stats = svc.apply(batch);
    EXPECT_EQ(stats.edges, batch.size());
    EXPECT_EQ(stats.epoch, ++expected_epoch);
    applied += stats.edges;
  }
  EXPECT_EQ(svc.epoch(), expected_epoch);
  EXPECT_EQ(svc.graph().num_edges(), s.base.num_edges() + applied);

  // Every vertex that ever arrived is assigned in the published snapshot.
  const auto snap = svc.snapshot();
  ASSERT_EQ(snap->part_of.size(), svc.graph().num_vertices());
  EXPECT_EQ(snap->assigned, snap->part_of.size());
  for (const PartId part : snap->part_of) ASSERT_LT(part, 4u);

  // Lookups past the vertex set stay kUnassigned rather than crashing.
  EXPECT_EQ(svc.lookup(svc.graph().num_vertices() + 10), kUnassigned);
}

TEST(PartitionService, EmptyBatchIsANoOp) {
  const Scenario s = make_scenario(1 << 8, 3);
  PartitionService svc(s.base,
                       partition::create("bpart")->partition(s.base, 4),
                       config_with_budget(16));
  const std::uint64_t before = svc.epoch();
  const UpdateStats stats = svc.apply({});
  EXPECT_EQ(stats.edges, 0u);
  EXPECT_EQ(svc.epoch(), before);
}

TEST(PartitionService, MaintainRespectsBudgetAndCompacts) {
  const Scenario s = make_scenario(1 << 10, 11);
  ServiceConfig cfg = config_with_budget(3);
  cfg.compact_threshold = 0.0;  // No eager compaction: maintain() must.
  PartitionService svc(s.base,
                       partition::create("hash")->partition(s.base, 8), cfg);

  for (const auto& batch : s.batches) svc.apply(batch);
  EXPECT_FALSE(svc.graph().delta_edges().empty());

  const MaintenanceStats stats = svc.maintain();
  EXPECT_TRUE(stats.compacted);
  EXPECT_TRUE(svc.graph().delta_edges().empty());
  EXPECT_EQ(stats.budget, 3u);
  EXPECT_LE(stats.migrated, 3u);
  EXPECT_GT(stats.candidates, 0u);
  // The hash base partition leaves far more than 3 positive-gain movers, so
  // the budget is what stopped it.
  EXPECT_EQ(stats.migrated, 3u);
  EXPECT_GE(stats.eligible, stats.migrated);

  // The dirty set was consumed: an immediate second pass has no candidates.
  const MaintenanceStats again = svc.maintain();
  EXPECT_EQ(again.candidates, 0u);
  EXPECT_EQ(again.migrated, 0u);
}

TEST(PartitionService, EagerCompactionTriggersOnThreshold) {
  const Scenario s = make_scenario(1 << 9, 13);
  ServiceConfig cfg = config_with_budget(16);
  cfg.compact_threshold = 1e-6;  // Any overlay at all triggers compaction.
  PartitionService svc(s.base,
                       partition::create("bpart")->partition(s.base, 4), cfg);

  const UpdateStats stats = svc.apply(s.batches.front());
  EXPECT_TRUE(stats.compacted);
  EXPECT_TRUE(svc.graph().delta_edges().empty());
  EXPECT_EQ(svc.graph().base().num_edges(),
            s.base.num_edges() + stats.edges);
}

TEST(PartitionService, SnapshotIsImmutableWhileServiceMovesOn) {
  const Scenario s = make_scenario(1 << 9, 19);
  PartitionService svc(s.base,
                       partition::create("bpart")->partition(s.base, 4),
                       config_with_budget(16));
  const auto pinned = svc.snapshot();
  const std::uint64_t pinned_epoch = pinned->epoch;
  const std::vector<PartId> pinned_parts = pinned->part_of;

  for (const auto& batch : s.batches) svc.apply(batch);
  svc.maintain();

  EXPECT_GT(svc.epoch(), pinned_epoch);
  EXPECT_EQ(pinned->epoch, pinned_epoch);
  EXPECT_TRUE(std::ranges::equal(pinned->part_of, pinned_parts));
}

TEST(PartitionService, DeterministicAcrossThreadCounts) {
  // The acceptance bar: replaying the same trace with 1, 2 and 8 scoring
  // threads gives bit-identical assignments — incremental picks are
  // sequential by construction and budgeted_restream ranks against a
  // frozen snapshot with a total order.
  std::vector<std::vector<PartId>> finals;
  for (unsigned threads : {1u, 2u, 8u}) {
    const Scenario s = make_scenario(1 << 11, 23);
    ServiceConfig cfg = config_with_budget(128);
    cfg.stream.threads = threads;
    PartitionService svc(s.base,
                         partition::create("bpart")->partition(s.base, 8),
                         cfg);
    std::size_t i = 0;
    for (const auto& batch : s.batches) {
      svc.apply(batch);
      if (++i % 2 == 0) svc.maintain();
    }
    svc.maintain();
    const auto snap = svc.snapshot();
    finals.push_back(snap->part_of);
  }
  ASSERT_EQ(finals[0].size(), finals[1].size());
  EXPECT_EQ(finals[0], finals[1]);
  EXPECT_EQ(finals[0], finals[2]);
}

TEST(PartitionService, MaintainedCutStaysNearFullRepartition) {
  const Scenario s = make_scenario(1 << 11, 31);
  PartitionService svc(s.base,
                       partition::create("bpart")->partition(s.base, 8),
                       config_with_budget(1 << 20));
  for (const auto& batch : s.batches) {
    svc.apply(batch);
    svc.maintain();
  }

  // Rebuild the final graph from scratch and compare cut ratios. The bench
  // enforces the 1.10× acceptance bound at scale; this is the smoke-sized
  // version with a loose factor so it stays robust to generator tweaks.
  svc.maintain();
  const graph::Graph& final_g = svc.graph().base();
  const partition::Partition full =
      partition::create("bpart")->partition(final_g, 8);
  const double incremental_cut =
      partition::edge_cut_ratio(final_g, svc.partition_copy());
  const double full_cut = partition::edge_cut_ratio(final_g, full);
  EXPECT_LT(incremental_cut, std::max(full_cut * 1.5, full_cut + 0.05));
}

TEST(PartitionService, ConcurrentLookupsDuringUpdatesAndMaintenance) {
  // TSan coverage: hammer lookup()/snapshot() from reader threads while the
  // writer applies batches and runs maintenance. Readers verify snapshot
  // invariants (epoch monotonic per reader, parts in range, fully
  // assigned) and flag violations through atomics — no gtest asserts off
  // the main thread.
  const Scenario s = make_scenario(1 << 10, 37, /*batch_pairs=*/64);
  const PartId k = 8;
  PartitionService svc(s.base, partition::create("bpart")->partition(s.base, k),
                       config_with_budget(64));

  std::atomic<bool> stop{false};
  std::atomic<bool> torn_snapshot{false};
  std::atomic<bool> epoch_regressed{false};
  std::atomic<bool> bad_part{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_epoch = 0;
      VertexId v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = svc.snapshot();
        if (snap->epoch < last_epoch)
          epoch_regressed.store(true, std::memory_order_relaxed);
        last_epoch = snap->epoch;
        if (snap->assigned != snap->part_of.size())
          torn_snapshot.store(true, std::memory_order_relaxed);
        if (!snap->part_of.empty()) {
          const PartId part = snap->part_of[v % snap->part_of.size()];
          if (part >= k) bad_part.store(true, std::memory_order_relaxed);
        }
        const PartId direct = svc.lookup(v);
        if (direct != kUnassigned && direct >= k)
          bad_part.store(true, std::memory_order_relaxed);
        ++v;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Don't start writing until every reader has completed an iteration —
  // otherwise a fast writer can raise `stop` before the readers are even
  // scheduled and the reads > 0 assertion below fails spuriously.
  while (reads.load(std::memory_order_relaxed) < readers.size())
    std::this_thread::yield();

  for (std::size_t i = 0; i < s.batches.size(); ++i) {
    svc.apply(s.batches[i]);
    if (i % 2 == 1) svc.maintain();
  }
  svc.maintain();

  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(torn_snapshot.load()) << "reader saw a half-published epoch";
  EXPECT_FALSE(epoch_regressed.load()) << "epoch went backwards";
  EXPECT_FALSE(bad_part.load()) << "part id out of range";
  EXPECT_GT(reads.load(), 0u);
}

}  // namespace
}  // namespace bpart::dyn
