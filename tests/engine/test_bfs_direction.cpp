// Direction-optimizing BFS: identical distances, fewer edge traversals on
// social graphs (Gemini's adaptive push/pull).
#include <gtest/gtest.h>

#include "engine/bfs.hpp"
#include "graph/generators.hpp"
#include "partition/chunk.hpp"

namespace bpart::engine {
namespace {

using graph::Graph;

Graph social() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 4096;
  cfg.avg_degree = 16;
  cfg.num_communities = 32;
  cfg.min_degree = 2;
  cfg.seed = 23;
  return Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

TEST(DirectionOptimizingBfs, DistancesMatchPushOnly) {
  const Graph g = social();
  const auto parts = partition::ChunkV().partition(g, 4);
  BfsConfig push_only;
  BfsConfig adaptive;
  adaptive.direction_optimizing = true;
  const auto a = bfs(g, parts, 0, {}, push_only);
  const auto b = bfs(g, parts, 0, {}, adaptive);
  ASSERT_EQ(a.distance.size(), b.distance.size());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(a.distance[v], b.distance[v]) << "vertex " << v;
}

TEST(DirectionOptimizingBfs, ActuallyPullsOnDenseIterations) {
  const Graph g = social();
  const auto parts = partition::ChunkV().partition(g, 4);
  BfsConfig adaptive;
  adaptive.direction_optimizing = true;
  const auto res = bfs(g, parts, 0, {}, adaptive);
  EXPECT_TRUE(std::any_of(res.pulled.begin(), res.pulled.end(),
                          [](bool p) { return p; }));
  // The first iteration (frontier = 1 vertex) must be a push.
  ASSERT_FALSE(res.pulled.empty());
  EXPECT_FALSE(res.pulled[0]);
}

TEST(DirectionOptimizingBfs, SavesWorkOnSocialGraph) {
  // Beamer's result: the dense middle iterations scan far fewer edges
  // bottom-up. Compare total work (edge traversals).
  const Graph g = social();
  const auto parts = partition::ChunkV().partition(g, 4);
  BfsConfig adaptive;
  adaptive.direction_optimizing = true;
  const auto push = bfs(g, parts, 0, {}, {});
  const auto opt = bfs(g, parts, 0, {}, adaptive);
  EXPECT_LT(opt.run.total_work(), push.run.total_work());
}

TEST(DirectionOptimizingBfs, PushOnlyNeverPulls) {
  const Graph g = social();
  const auto parts = partition::ChunkV().partition(g, 4);
  const auto res = bfs(g, parts, 0, {}, {});
  EXPECT_TRUE(std::none_of(res.pulled.begin(), res.pulled.end(),
                           [](bool p) { return p; }));
}

TEST(DirectionOptimizingBfs, SparseGraphStaysPush) {
  // A long path never has a dense frontier: the heuristic must not pull.
  graph::EdgeList el;
  for (graph::VertexId v = 0; v + 1 < 256; ++v) el.add_undirected(v, v + 1);
  const Graph g = Graph::from_edges(el);
  const auto parts = partition::ChunkV().partition(g, 2);
  BfsConfig adaptive;
  adaptive.direction_optimizing = true;
  const auto res = bfs(g, parts, 0, {}, adaptive);
  EXPECT_TRUE(std::none_of(res.pulled.begin(), res.pulled.end(),
                           [](bool p) { return p; }));
}

}  // namespace
}  // namespace bpart::engine
