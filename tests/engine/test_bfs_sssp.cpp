#include <gtest/gtest.h>

#include "engine/bfs.hpp"
#include "engine/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"
#include "util/check.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph path_of(graph::VertexId n) {
  EdgeList el;
  for (graph::VertexId v = 0; v + 1 < n; ++v) el.add_undirected(v, v + 1);
  return Graph::from_edges(el);
}

TEST(Bfs, DistancesOnPath) {
  const Graph g = path_of(10);
  const auto res = bfs(g, partition::ChunkV().partition(g, 2), 0);
  for (graph::VertexId v = 0; v < 10; ++v) EXPECT_EQ(res.distance[v], v);
}

TEST(Bfs, UnreachableMarked) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(2, 3);
  const Graph g = Graph::from_edges(el);
  const auto res = bfs(g, partition::ChunkV().partition(g, 2), 0);
  EXPECT_EQ(res.distance[1], 1u);
  EXPECT_EQ(res.distance[2], BfsResult::kUnreachable);
}

TEST(Bfs, IterationsEqualEccentricity) {
  const Graph g = path_of(16);
  const auto res = bfs(g, partition::ChunkV().partition(g, 4), 0);
  // Frontier advances one hop per superstep; the last superstep discovers
  // nothing new but is still executed. 15 hops -> 15 or 16 iterations.
  EXPECT_GE(res.run.iterations.size(), 15u);
  EXPECT_LE(res.run.iterations.size(), 16u);
}

TEST(Bfs, RejectsBadSource) {
  const Graph g = path_of(4);
  EXPECT_THROW(bfs(g, partition::ChunkV().partition(g, 2), 99), CheckError);
}

TEST(Bfs, ResultIndependentOfPartition) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto a = bfs(g, partition::ChunkV().partition(g, 2), 5);
  const auto b = bfs(g, partition::HashPartitioner().partition(g, 8), 5);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 17)
    EXPECT_EQ(a.distance[v], b.distance[v]);
}

TEST(Sssp, WeightsAreDeterministicAndInRange) {
  SsspConfig cfg;
  cfg.max_weight = 8;
  for (graph::VertexId u = 0; u < 50; ++u) {
    const auto w = sssp_edge_weight(u, u + 1, cfg);
    EXPECT_GE(w, 1u);
    EXPECT_LE(w, 8u);
    EXPECT_EQ(w, sssp_edge_weight(u, u + 1, cfg));
  }
}

TEST(Sssp, ReducesToBfsWithUnitWeights) {
  SsspConfig cfg;
  cfg.max_weight = 1;  // all weights 1
  const Graph g = path_of(12);
  const auto d = sssp(g, partition::ChunkV().partition(g, 2), 0, cfg);
  for (graph::VertexId v = 0; v < 12; ++v) EXPECT_EQ(d.distance[v], v);
}

TEST(Sssp, TriangleShortcut) {
  // 0-1 weight big vs 0-2-1 cheap: craft with unit weights by path length.
  SsspConfig cfg;
  cfg.max_weight = 1;
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(0, 2);
  el.add_undirected(2, 1);
  const Graph g = Graph::from_edges(el);
  const auto d = sssp(g, partition::ChunkV().partition(g, 1), 0, cfg);
  EXPECT_EQ(d.distance[1], 1u);  // direct edge wins with unit weights
  EXPECT_EQ(d.distance[2], 1u);
}

TEST(Sssp, DistancesSatisfyTriangleInequalityOverEdges) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  SsspConfig wcfg;
  const auto res = sssp(g, partition::ChunkV().partition(g, 4), 0, wcfg);
  // For every edge (u, v): d[v] <= d[u] + w(u, v) — i.e. relaxation
  // converged.
  for (graph::VertexId u = 0; u < g.num_vertices(); ++u) {
    if (res.distance[u] == SsspResult::kUnreachable) continue;
    for (graph::VertexId v : g.out_neighbors(u)) {
      ASSERT_LE(res.distance[v],
                res.distance[u] + sssp_edge_weight(u, v, wcfg));
    }
  }
}

TEST(Sssp, ResultIndependentOfPartition) {
  graph::RmatConfig cfg;
  cfg.scale = 8;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto a = sssp(g, partition::ChunkV().partition(g, 2), 3);
  const auto b = sssp(g, partition::HashPartitioner().partition(g, 8), 3);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 13)
    EXPECT_EQ(a.distance[v], b.distance[v]);
}

}  // namespace
}  // namespace bpart::engine
