#include "engine/components.hpp"

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

TEST(Components, TwoTriangles) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 0);
  el.add_undirected(3, 4);
  el.add_undirected(4, 5);
  el.add_undirected(5, 3);
  const Graph g = Graph::from_edges(el);
  const auto res =
      connected_components(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.num_components, 2u);
  EXPECT_EQ(res.label[0], 0u);
  EXPECT_EQ(res.label[1], 0u);
  EXPECT_EQ(res.label[2], 0u);
  EXPECT_EQ(res.label[3], 3u);  // HashMin: min vertex id of component
  EXPECT_EQ(res.label[5], 3u);
}

TEST(Components, IsolatedVerticesAreSingletons) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.set_num_vertices(4);
  const Graph g = Graph::from_edges(el);
  const auto res =
      connected_components(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.num_components, 3u);
}

TEST(Components, DirectedEdgeStillConnectsWeakly) {
  EdgeList el;
  el.add(0, 1);  // only one direction
  const Graph g = Graph::from_edges(el);
  const auto res =
      connected_components(g, partition::ChunkV().partition(g, 1));
  EXPECT_EQ(res.num_components, 1u);
}

TEST(Components, MatchesSequentialBfsLabeling) {
  graph::RmatConfig cfg;
  cfg.scale = 10;
  cfg.edge_factor = 4;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto res =
      connected_components(g, partition::HashPartitioner().partition(g, 4));
  const auto expected = graph::connected_components(g);
  EXPECT_EQ(res.num_components, graph::count_components(expected));
  // Same partition into components (labels may differ; compare pairwise on
  // a sample).
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 11)
    for (graph::VertexId u = v + 7; u < g.num_vertices(); u += 101) {
      EXPECT_EQ(res.label[v] == res.label[u],
                expected[v] == expected[u])
          << "vertices " << v << ", " << u;
    }
}

TEST(Components, ResultIndependentOfPartition) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto a =
      connected_components(g, partition::ChunkV().partition(g, 2));
  const auto b =
      connected_components(g, partition::HashPartitioner().partition(g, 8));
  EXPECT_EQ(a.num_components, b.num_components);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 37)
    EXPECT_EQ(a.label[v], b.label[v]);
}

TEST(Components, ConvergesAndReportsIterations) {
  // A path graph of length L needs ~L supersteps with HashMin — check the
  // iteration count is sane and the run report covers them.
  EdgeList el;
  for (graph::VertexId v = 0; v + 1 < 32; ++v) el.add_undirected(v, v + 1);
  const Graph g = Graph::from_edges(el);
  const auto res =
      connected_components(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.num_components, 1u);
  EXPECT_GE(res.run.iterations.size(), 2u);
  EXPECT_LE(res.run.iterations.size(), 40u);
}

TEST(Components, ActiveSetShrinks) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto res =
      connected_components(g, partition::ChunkV().partition(g, 4));
  // Work must decrease over time as labels stabilize.
  const auto& its = res.run.iterations;
  ASSERT_GE(its.size(), 2u);
  EXPECT_LT(its.back().total_work(), its.front().total_work());
}

}  // namespace
}  // namespace bpart::engine
