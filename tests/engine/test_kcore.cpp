#include "engine/kcore.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

TEST(KCore, CliquePlusTail) {
  // K4 {0,1,2,3} with a tail 3-4-5: clique vertices are 3-core, tail 1-core.
  EdgeList el;
  for (graph::VertexId a = 0; a < 4; ++a)
    for (graph::VertexId b = a + 1; b < 4; ++b) el.add_undirected(a, b);
  el.add_undirected(3, 4);
  el.add_undirected(4, 5);
  const Graph g = Graph::from_edges(el);
  const auto res = kcore(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.core[0], 3u);
  EXPECT_EQ(res.core[1], 3u);
  EXPECT_EQ(res.core[2], 3u);
  EXPECT_EQ(res.core[3], 3u);
  EXPECT_EQ(res.core[4], 1u);
  EXPECT_EQ(res.core[5], 1u);
  EXPECT_EQ(res.max_core, 3u);
}

TEST(KCore, RingIsTwoCore) {
  EdgeList el;
  for (graph::VertexId v = 0; v < 10; ++v) el.add_undirected(v, (v + 1) % 10);
  const Graph g = Graph::from_edges(el);
  const auto res = kcore(g, partition::ChunkV().partition(g, 2));
  for (graph::VertexId v = 0; v < 10; ++v) EXPECT_EQ(res.core[v], 2u);
}

TEST(KCore, IsolatedVerticesAreZeroCore) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.set_num_vertices(4);
  const Graph g = Graph::from_edges(el);
  const auto res = kcore(g, partition::ChunkV().partition(g, 1));
  EXPECT_EQ(res.core[2], 0u);
  EXPECT_EQ(res.core[3], 0u);
  EXPECT_EQ(res.core[0], 1u);
}

TEST(KCore, CoreNumbersSatisfyDefinition) {
  // Every vertex with core number c must have >= c neighbors of core >= c.
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 8;
  const Graph g =
      Graph::from_edges_symmetric(graph::community_scale_free(cfg));
  const auto res = kcore(g, partition::HashPartitioner().partition(g, 4));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t strong = 0;
    for (graph::VertexId u : g.out_neighbors(v))
      if (res.core[u] >= res.core[v]) ++strong;
    ASSERT_GE(strong, res.core[v]) << "vertex " << v;
  }
}

TEST(KCore, ResultIndependentOfPartition) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto a = kcore(g, partition::ChunkV().partition(g, 2));
  const auto b = kcore(g, partition::HashPartitioner().partition(g, 8));
  EXPECT_EQ(a.core, b.core);
}

TEST(KCore, MaxCoreBoundedByMaxDegree) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto res = kcore(g, partition::ChunkV().partition(g, 2));
  graph::EdgeId max_deg = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    max_deg = std::max(max_deg, g.out_degree(v));
  EXPECT_LE(res.max_core, max_deg);
  EXPECT_GE(res.max_core, 1u);
}

}  // namespace
}  // namespace bpart::engine
