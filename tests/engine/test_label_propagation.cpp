#include "engine/label_propagation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph two_cliques_with_bridge() {
  EdgeList el;
  for (graph::VertexId a = 0; a < 5; ++a)
    for (graph::VertexId b = a + 1; b < 5; ++b) el.add_undirected(a, b);
  for (graph::VertexId a = 5; a < 10; ++a)
    for (graph::VertexId b = a + 1; b < 10; ++b) el.add_undirected(a, b);
  el.add_undirected(4, 5);  // bridge
  return Graph::from_edges(el);
}

TEST(Modularity, PerfectSplitOfTwoCliques) {
  const Graph g = two_cliques_with_bridge();
  std::vector<graph::VertexId> label(10);
  for (graph::VertexId v = 0; v < 10; ++v) label[v] = v < 5 ? 0 : 1;
  // Near-ideal two-community split: high modularity.
  EXPECT_GT(modularity(g, label), 0.35);
}

TEST(Modularity, SingleCommunityIsZero) {
  const Graph g = two_cliques_with_bridge();
  const std::vector<graph::VertexId> label(10, 0);
  EXPECT_NEAR(modularity(g, label), 0.0, 1e-12);
}

TEST(Modularity, SingletonCommunitiesAreNegative) {
  const Graph g = two_cliques_with_bridge();
  std::vector<graph::VertexId> label(10);
  for (graph::VertexId v = 0; v < 10; ++v) label[v] = v;
  EXPECT_LT(modularity(g, label), 0.0);
}

TEST(Modularity, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(modularity(Graph{}, {}), 0.0);
}

TEST(LabelPropagation, SeparatesTwoCliques) {
  const Graph g = two_cliques_with_bridge();
  const auto res = label_propagation_communities(
      g, partition::ChunkV().partition(g, 2));
  // All of clique 1 shares a label, all of clique 2 shares a label.
  for (graph::VertexId v = 1; v < 5; ++v) EXPECT_EQ(res.label[v], res.label[0]);
  for (graph::VertexId v = 6; v < 10; ++v)
    EXPECT_EQ(res.label[v], res.label[5]);
  EXPECT_GE(res.num_communities, 2u);
}

TEST(LabelPropagation, FindsPlantedCommunities) {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 4096;
  cfg.avg_degree = 16;
  cfg.num_communities = 16;
  cfg.mixing = 0.15;  // strong communities
  cfg.seed = 12;
  const Graph g =
      Graph::from_edges_symmetric(graph::community_scale_free(cfg));
  const auto res = label_propagation_communities(
      g, partition::ChunkV().partition(g, 4));
  // Strong planted structure: LP should find a high-modularity cover with
  // a community count in the right ballpark.
  EXPECT_GT(res.modularity, 0.3);
  EXPECT_GE(res.num_communities, 4u);
  EXPECT_LE(res.num_communities, 400u);
}

TEST(LabelPropagation, LabelsAreDense) {
  const Graph g = two_cliques_with_bridge();
  const auto res = label_propagation_communities(
      g, partition::ChunkV().partition(g, 2));
  for (graph::VertexId lbl : res.label) EXPECT_LT(lbl, res.num_communities);
}

TEST(LabelPropagation, DeterministicForSeed) {
  const Graph g = two_cliques_with_bridge();
  const auto parts = partition::ChunkV().partition(g, 2);
  const auto a = label_propagation_communities(g, parts);
  const auto b = label_propagation_communities(g, parts);
  EXPECT_EQ(a.label, b.label);
  EXPECT_DOUBLE_EQ(a.modularity, b.modularity);
}

TEST(LabelPropagation, RespectsIterationCap) {
  const Graph g = two_cliques_with_bridge();
  LabelPropagationConfig cfg;
  cfg.max_iterations = 2;
  const auto res = label_propagation_communities(
      g, partition::ChunkV().partition(g, 2), cfg);
  EXPECT_LE(res.run.iterations.size(), 2u);
}

}  // namespace
}  // namespace bpart::engine
