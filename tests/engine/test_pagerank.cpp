#include "engine/pagerank.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/registry.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;
using partition::Partition;

Graph small_social() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 4096;
  cfg.avg_degree = 12;
  cfg.num_communities = 32;
  cfg.seed = 3;
  return Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

Partition chunkv(const Graph& g, partition::PartId k) {
  return partition::ChunkV().partition(g, k);
}

TEST(PageRank, RanksSumToOne) {
  const Graph g = small_social();
  const auto res = pagerank(g, chunkv(g, 4));
  const double sum =
      std::accumulate(res.rank.begin(), res.rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRank, UniformOnRegularRing) {
  // On a vertex-transitive graph PageRank is uniform.
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 100;
  cfg.k = 2;
  cfg.beta = 0.0;
  const Graph g = Graph::from_edges(graph::watts_strogatz(cfg));
  const auto res = pagerank(g, chunkv(g, 2));
  for (double r : res.rank) EXPECT_NEAR(r, 0.01, 1e-12);
}

TEST(PageRank, HubOutranksLeaves) {
  // Star with back edges: the hub must collect the highest rank.
  EdgeList el;
  for (graph::VertexId v = 1; v <= 20; ++v) el.add_undirected(0, v);
  const Graph g = Graph::from_edges(el);
  const auto res = pagerank(g, chunkv(g, 2));
  for (graph::VertexId v = 1; v <= 20; ++v)
    EXPECT_GT(res.rank[0], res.rank[v]);
}

TEST(PageRank, KnownTwoVertexFixedPoint) {
  // 0 <-> 1 is symmetric: rank (0.5, 0.5) is the exact fixed point.
  EdgeList el;
  el.add_undirected(0, 1);
  const Graph g = Graph::from_edges(el);
  const auto res = pagerank(g, chunkv(g, 1));
  EXPECT_NEAR(res.rank[0], 0.5, 1e-12);
  EXPECT_NEAR(res.rank[1], 0.5, 1e-12);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangling: rank must still sum to 1.
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::from_edges(el);
  const auto res = pagerank(g, chunkv(g, 1));
  EXPECT_NEAR(res.rank[0] + res.rank[1], 1.0, 1e-9);
  EXPECT_GT(res.rank[1], res.rank[0]);  // 1 receives from 0
}

TEST(PageRank, RunsRequestedIterations) {
  const Graph g = small_social();
  PageRankConfig cfg;
  cfg.iterations = 7;
  const auto res = pagerank(g, chunkv(g, 4), cfg);
  EXPECT_EQ(res.run.iterations.size(), 7u);
}

TEST(PageRank, ResultIndependentOfPartition) {
  // The partition affects accounting, never the numeric result.
  const Graph g = small_social();
  const auto a = pagerank(g, chunkv(g, 2));
  const auto b =
      pagerank(g, partition::HashPartitioner().partition(g, 8));
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 53)
    EXPECT_DOUBLE_EQ(a.rank[v], b.rank[v]);
}

TEST(PageRank, WorkEqualsEdgesPlusDanglingPerIteration) {
  const Graph g = small_social();
  const auto res = pagerank(g, chunkv(g, 4));
  std::uint64_t dangling = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.out_degree(v) == 0) ++dangling;
  for (const auto& it : res.run.iterations)
    EXPECT_EQ(it.total_work(), g.num_edges() + dangling);
}

TEST(PageRank, MessagesMatchCutEdges) {
  // Push PageRank sends exactly one message per cut edge per iteration.
  const Graph g = small_social();
  const Partition p = partition::HashPartitioner().partition(g, 4);
  std::uint64_t cut = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    for (graph::VertexId u : g.out_neighbors(v))
      if (p[v] != p[u]) ++cut;
  const auto res = pagerank(g, p);
  for (const auto& it : res.run.iterations)
    EXPECT_EQ(it.total_messages(), cut);
}

TEST(PageRank, BalancedPartitionReducesWaitRatio) {
  // The paper's core system claim, in miniature: 2D-balanced partitions
  // wait less than edge-skewed ones.
  const Graph g = small_social();
  const auto chunk = pagerank(g, chunkv(g, 8));
  const auto bpart = pagerank(
      g, partition::create("bpart")->partition(g, 8));
  EXPECT_LT(bpart.run.wait_ratio(), chunk.run.wait_ratio());
}

}  // namespace
}  // namespace bpart::engine
