// The genuinely-threaded PageRank must agree with the accounting engine:
// same algorithm, real message passing, float-precision contributions.
#include <gtest/gtest.h>

#include "engine/pagerank.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph small_social() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 31;
  return Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

TEST(PageRankThreaded, MatchesAccountingEngine) {
  const Graph g = small_social();
  const auto parts = partition::create("bpart")->partition(g, 4);
  const auto reference = pagerank(g, parts);
  const auto threaded = pagerank_threaded(g, parts);
  ASSERT_EQ(threaded.rank.size(), reference.rank.size());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(threaded.rank[v], reference.rank[v], 1e-4)
        << "vertex " << v;
}

TEST(PageRankThreaded, RanksSumToOne) {
  const Graph g = small_social();
  const auto parts = partition::create("hash")->partition(g, 8);
  const auto res = pagerank_threaded(g, parts);
  double sum = 0;
  for (double r : res.rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-3);
}

TEST(PageRankThreaded, HandlesDanglingMassAcrossMachines) {
  // 0 -> 1 -> 2, 2 dangling, split across 3 machines: the dangling
  // broadcast path must keep total mass at 1.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  const Graph g = Graph::from_edges(el);
  partition::Partition parts(3, 3);
  for (graph::VertexId v = 0; v < 3; ++v) parts.assign(v, v);
  const auto threaded = pagerank_threaded(g, parts);
  const auto reference = pagerank(g, parts);
  double sum = 0;
  for (graph::VertexId v = 0; v < 3; ++v) {
    sum += threaded.rank[v];
    EXPECT_NEAR(threaded.rank[v], reference.rank[v], 1e-5);
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(PageRankThreaded, SingleMachine) {
  const Graph g = small_social();
  const auto parts = partition::create("chunk-v")->partition(g, 1);
  const auto threaded = pagerank_threaded(g, parts);
  const auto reference = pagerank(g, parts);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 41)
    EXPECT_NEAR(threaded.rank[v], reference.rank[v], 1e-6);
}

TEST(PageRankThreaded, RespectsIterationConfig) {
  const Graph g = small_social();
  const auto parts = partition::create("chunk-v")->partition(g, 2);
  PageRankConfig cfg;
  cfg.iterations = 3;
  const auto a = pagerank_threaded(g, parts, cfg);
  const auto b = pagerank(g, parts, cfg);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 97)
    EXPECT_NEAR(a.rank[v], b.rank[v], 1e-4);
}

}  // namespace
}  // namespace bpart::engine
