// Round-trip contract of pipeline-integrated reordering (DESIGN.md §14):
// running an engine app on a relabeled graph and un-permuting the result
// at the API boundary must agree with running on the original graph. For
// PageRank the agreement is numerical (the relabel changes the fold order
// inside each destination's gather, so low-order bits may move); for CC
// the component *structure* is exact — labels are min-vertex-ids in the
// active id space, so they are compared through a bijection.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "partition/registry.hpp"

namespace bpart::engine {
namespace {

graph::Graph make_graph() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 19;
  return graph::Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

/// out[v] = vals[perm[v]] — the runner's unpermute, inlined so this test
/// exercises the documented boundary math rather than the helper.
template <typename T>
std::vector<T> unpermute(const std::vector<T>& vals,
                         const std::vector<graph::VertexId>& perm) {
  std::vector<T> out(vals.size());
  for (graph::VertexId v = 0; v < perm.size(); ++v) out[v] = vals[perm[v]];
  return out;
}

/// a and b partition the vertices identically iff a consistent bijection
/// between their label alphabets exists in both directions.
void expect_same_partition_structure(const std::vector<graph::VertexId>& a,
                                     const std::vector<graph::VertexId>& b) {
  ASSERT_EQ(a.size(), b.size());
  std::unordered_map<graph::VertexId, graph::VertexId> fwd, bwd;
  for (std::size_t v = 0; v < a.size(); ++v) {
    const auto [fit, finserted] = fwd.try_emplace(a[v], b[v]);
    ASSERT_EQ(fit->second, b[v]) << "vertex " << v;
    const auto [bit, binserted] = bwd.try_emplace(b[v], a[v]);
    ASSERT_EQ(bit->second, a[v]) << "vertex " << v;
  }
}

struct NamedOrder {
  std::string name;
  std::vector<graph::VertexId> perm;
};

class ReorderParity : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = new graph::Graph(make_graph());
    const partition::Partition parts =
        partition::create("chunk-v")->partition(*graph_, 4);
    base_pr_ = new PageRankResult(pagerank(*graph_, parts));
    base_cc_ = new ComponentsResult(connected_components(*graph_, parts));
    orders_ = new std::vector<NamedOrder>{
        {"degree", graph::degree_order(*graph_)},
        {"bfs", graph::select_order(*graph_, ReorderMode::kBfs, 0)},
        {"random", graph::random_order(graph_->num_vertices(), 5)},
    };
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete base_pr_;
    delete base_cc_;
    delete orders_;
    graph_ = nullptr;
    base_pr_ = nullptr;
    base_cc_ = nullptr;
    orders_ = nullptr;
  }

  static graph::Graph* graph_;
  static PageRankResult* base_pr_;
  static ComponentsResult* base_cc_;
  static std::vector<NamedOrder>* orders_;
};

graph::Graph* ReorderParity::graph_ = nullptr;
PageRankResult* ReorderParity::base_pr_ = nullptr;
ComponentsResult* ReorderParity::base_cc_ = nullptr;
std::vector<NamedOrder>* ReorderParity::orders_ = nullptr;

TEST_F(ReorderParity, PageRankUnpermutesToOriginal) {
  for (const NamedOrder& order : *orders_) {
    const graph::Graph h = graph::apply_permutation(*graph_, order.perm);
    const partition::Partition parts =
        partition::create("chunk-v")->partition(h, 4);
    for (const unsigned threads : {1u, 2u}) {
      PageRankConfig cfg;
      cfg.exec.threads = threads;
      const std::vector<double> got =
          unpermute(pagerank(h, parts, cfg).rank, order.perm);
      double max_err = 0;
      for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v)
        max_err = std::max(max_err,
                           std::abs(got[v] - base_pr_->rank[v]));
      EXPECT_LE(max_err, 1e-8)
          << order.name << " order at " << threads << " threads";
    }
  }
}

TEST_F(ReorderParity, ComponentsUnpermuteToSameStructure) {
  for (const NamedOrder& order : *orders_) {
    const graph::Graph h = graph::apply_permutation(*graph_, order.perm);
    const partition::Partition parts =
        partition::create("chunk-v")->partition(h, 4);
    for (const unsigned threads : {1u, 2u}) {
      exec::ExecConfig xcfg;
      xcfg.threads = threads;
      const ComponentsResult got =
          connected_components(h, parts, {}, 200, xcfg);
      EXPECT_EQ(got.num_components, base_cc_->num_components) << order.name;
      expect_same_partition_structure(unpermute(got.label, order.perm),
                                      base_cc_->label);
    }
  }
}

}  // namespace
}  // namespace bpart::engine
