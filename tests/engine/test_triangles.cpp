#include "engine/triangles.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"

namespace bpart::engine {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph complete(graph::VertexId n) {
  EdgeList el;
  for (graph::VertexId a = 0; a < n; ++a)
    for (graph::VertexId b = a + 1; b < n; ++b) el.add_undirected(a, b);
  return Graph::from_edges(el);
}

TEST(Triangles, SingleTriangle) {
  const Graph g = complete(3);
  const auto res = count_triangles(g, partition::ChunkV().partition(g, 1));
  EXPECT_EQ(res.total_triangles, 1u);
  EXPECT_EQ(res.per_vertex[0], 1u);
  EXPECT_EQ(res.per_vertex[1], 1u);
  EXPECT_EQ(res.per_vertex[2], 1u);
  EXPECT_DOUBLE_EQ(res.global_clustering, 1.0);
}

TEST(Triangles, CompleteGraphCount) {
  // K_n has C(n,3) triangles; each vertex touches C(n-1,2).
  const Graph g = complete(8);
  const auto res = count_triangles(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.total_triangles, 56u);   // C(8,3)
  for (graph::VertexId v = 0; v < 8; ++v)
    EXPECT_EQ(res.per_vertex[v], 21u);   // C(7,2)
  EXPECT_DOUBLE_EQ(res.global_clustering, 1.0);
}

TEST(Triangles, TreeHasNone) {
  EdgeList el;
  for (graph::VertexId v = 1; v < 16; ++v) el.add_undirected(v / 2, v);
  const Graph g = Graph::from_edges(el);
  const auto res = count_triangles(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.total_triangles, 0u);
  EXPECT_DOUBLE_EQ(res.global_clustering, 0.0);
}

TEST(Triangles, SquareWithDiagonal) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  el.add_undirected(0, 2);  // diagonal: two triangles
  const Graph g = Graph::from_edges(el);
  const auto res = count_triangles(g, partition::ChunkV().partition(g, 2));
  EXPECT_EQ(res.total_triangles, 2u);
  EXPECT_EQ(res.per_vertex[0], 2u);
  EXPECT_EQ(res.per_vertex[2], 2u);
  EXPECT_EQ(res.per_vertex[1], 1u);
  EXPECT_EQ(res.per_vertex[3], 1u);
}

TEST(Triangles, PerVertexSumsToThreeTimesTotal) {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 77;
  const Graph g =
      Graph::from_edges_symmetric(graph::community_scale_free(cfg));
  const auto res = count_triangles(g, partition::ChunkV().partition(g, 4));
  std::uint64_t sum = 0;
  for (auto c : res.per_vertex) sum += c;
  EXPECT_EQ(sum, 3 * res.total_triangles);
}

TEST(Triangles, ResultIndependentOfPartition) {
  graph::RmatConfig cfg;
  cfg.scale = 9;
  const Graph g = Graph::from_edges_symmetric(graph::rmat(cfg));
  const auto a = count_triangles(g, partition::ChunkV().partition(g, 2));
  const auto b =
      count_triangles(g, partition::HashPartitioner().partition(g, 8));
  EXPECT_EQ(a.total_triangles, b.total_triangles);
  EXPECT_EQ(a.per_vertex, b.per_vertex);
}

TEST(Triangles, CommunityGraphClustersMoreThanRandom) {
  // Community structure raises the clustering coefficient — one more check
  // that the dataset stand-ins have social-network structure.
  graph::CommunityGraphConfig ccfg;
  ccfg.num_vertices = 4096;
  ccfg.avg_degree = 16;
  ccfg.num_communities = 64;
  ccfg.mixing = 0.15;
  const Graph community =
      Graph::from_edges_symmetric(graph::community_scale_free(ccfg));
  graph::ErdosRenyiConfig ecfg;
  ecfg.num_vertices = 4096;
  ecfg.num_edges = 32768;
  const Graph random =
      Graph::from_edges_symmetric(graph::erdos_renyi(ecfg));
  const auto a =
      count_triangles(community, partition::ChunkV().partition(community, 2));
  const auto b =
      count_triangles(random, partition::ChunkV().partition(random, 2));
  EXPECT_GT(a.global_clustering, 3 * b.global_clustering);
}

}  // namespace
}  // namespace bpart::engine
