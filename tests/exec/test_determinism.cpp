// The exec core's headline contract (DESIGN.md §10): results are
// bit-identical across thread counts. PageRank's pull-mode gather gives
// bit-identical ranks; CC additionally matches the sequential engine
// bit-for-bit, run report included; SSSP distances are the exact shortest-
// path fixpoint for every thread count.
#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "engine/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"

namespace bpart::engine {
namespace {

class ExecDeterminism : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::RmatConfig rm;
    rm.scale = 10;
    rm.edge_factor = 8;
    graph_ = new graph::Graph(
        graph::Graph::from_edges_symmetric(graph::rmat(rm)));
    parts_ = new partition::Partition(
        partition::create("bpart")->partition(*graph_, 4));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete parts_;
    graph_ = nullptr;
    parts_ = nullptr;
  }

  static graph::Graph* graph_;
  static partition::Partition* parts_;
};

graph::Graph* ExecDeterminism::graph_ = nullptr;
partition::Partition* ExecDeterminism::parts_ = nullptr;

TEST_F(ExecDeterminism, PageRankBitIdenticalAcrossThreadCounts) {
  PageRankConfig cfg;
  cfg.exec.threads = 1;
  const auto base = pagerank(*graph_, *parts_, cfg);
  for (const unsigned threads : {2u, 8u}) {
    cfg.exec.threads = threads;
    const auto got = pagerank(*graph_, *parts_, cfg);
    EXPECT_EQ(got.rank, base.rank) << threads << " threads";
  }
}

TEST_F(ExecDeterminism, PageRankThreadsDoNotChangeRanksAtAnyChunkSize) {
  // The determinism contract is keyed on (graph, chunk_edges): chunk
  // boundaries — and hence the dangling-mass fold order — never depend on
  // the worker count. Verify at a non-default chunk size too.
  PageRankConfig cfg;
  cfg.exec.chunk_edges = 256;
  cfg.exec.threads = 1;
  const auto base = pagerank(*graph_, *parts_, cfg);
  for (const unsigned threads : {3u, 8u}) {
    cfg.exec.threads = threads;
    const auto got = pagerank(*graph_, *parts_, cfg);
    EXPECT_EQ(got.rank, base.rank) << threads << " threads";
  }
}

TEST_F(ExecDeterminism, PageRankEnvRoutesToExecPath) {
  PageRankConfig cfg;
  cfg.exec.threads = 2;
  const auto explicit_cfg = pagerank(*graph_, *parts_, cfg);

  ASSERT_EQ(setenv("BPART_EXEC_THREADS", "2", 1), 0);
  const auto via_env = pagerank(*graph_, *parts_, PageRankConfig{});
  ASSERT_EQ(unsetenv("BPART_EXEC_THREADS"), 0);

  EXPECT_EQ(via_env.rank, explicit_cfg.rank);
}

TEST_F(ExecDeterminism, ComponentsBitIdenticalToSequentialEngine) {
  const auto base = connected_components(*graph_, *parts_);
  for (const unsigned threads : {1u, 2u, 8u}) {
    exec::ExecConfig ec;
    ec.threads = threads;
    const auto got = connected_components(*graph_, *parts_, {}, 200, ec);
    EXPECT_EQ(got.label, base.label) << threads << " threads";
    EXPECT_EQ(got.num_components, base.num_components);
    // The accounting replays identically: same supersteps, same totals.
    ASSERT_EQ(got.run.iterations.size(), base.run.iterations.size());
    EXPECT_EQ(got.run.total_work(), base.run.total_work());
    EXPECT_EQ(got.run.total_messages(), base.run.total_messages());
  }
}

TEST_F(ExecDeterminism, SsspDistancesIdenticalAcrossThreadCounts) {
  const auto base = sssp(*graph_, *parts_, /*source=*/0);
  SsspConfig cfg;
  cfg.exec.threads = 1;
  const auto one = sssp(*graph_, *parts_, 0, cfg);
  // The frozen-read BSP schedule may take different supersteps than the
  // sequential loop, but the distances are the same fixpoint.
  EXPECT_EQ(one.distance, base.distance);
  for (const unsigned threads : {2u, 8u}) {
    cfg.exec.threads = threads;
    const auto got = sssp(*graph_, *parts_, 0, cfg);
    EXPECT_EQ(got.distance, one.distance) << threads << " threads";
    EXPECT_EQ(got.run.iterations.size(), one.run.iterations.size());
    EXPECT_EQ(got.run.total_work(), one.run.total_work());
    EXPECT_EQ(got.run.total_messages(), one.run.total_messages());
  }
}

}  // namespace
}  // namespace bpart::engine
