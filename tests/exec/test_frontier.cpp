#include <gtest/gtest.h>

#include <vector>

#include "exec/frontier.hpp"

namespace bpart::exec {
namespace {

TEST(Frontier, AddTracksSizeMembershipAndEdgeMass) {
  Frontier f(10);
  EXPECT_TRUE(f.empty());
  f.add(3, 5);
  f.add(7, 2);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(f.edge_mass(), 7u);
  EXPECT_TRUE(f.contains(3));
  EXPECT_TRUE(f.contains(7));
  EXPECT_FALSE(f.contains(4));
}

TEST(Frontier, DuplicateAddIsNoOp) {
  Frontier f(4);
  f.add(2, 3);
  f.add(2, 3);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_EQ(f.edge_mass(), 3u);
  EXPECT_EQ(f.active().size(), 1u);
}

TEST(Frontier, SparseDenseRoundTripPreservesMembership) {
  Frontier f(100);
  const std::vector<graph::VertexId> members = {90, 5, 42, 7, 99};
  for (const graph::VertexId v : members) f.add(v);

  f.to_dense();
  EXPECT_TRUE(f.dense());
  for (const graph::VertexId v : members) EXPECT_TRUE(f.contains(v));
  EXPECT_EQ(f.size(), members.size());
  // Adds keep working while dense.
  f.add(1);
  EXPECT_EQ(f.size(), members.size() + 1);

  f.to_sparse();
  EXPECT_FALSE(f.dense());
  const auto active = f.active();
  ASSERT_EQ(active.size(), members.size() + 1);
  // to_sparse rebuilds in ascending order.
  for (std::size_t i = 1; i < active.size(); ++i)
    EXPECT_LT(active[i - 1], active[i]);
  EXPECT_EQ(active.front(), 1u);
  EXPECT_EQ(active.back(), 99u);
}

TEST(Frontier, ClearEmptiesBothRepresentations) {
  Frontier f(50);
  for (graph::VertexId v = 0; v < 50; v += 2) f.add(v, 1);
  f.to_dense();
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(f.edge_mass(), 0u);
  for (graph::VertexId v = 0; v < 50; ++v) EXPECT_FALSE(f.contains(v));

  f.add(9);
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.contains(9));
}

TEST(Frontier, SwapExchangesEverything) {
  Frontier a(10), b(10);
  a.add(1, 4);
  b.add(2, 6);
  b.add(3, 1);
  a.swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.edge_mass(), 7u);
  EXPECT_TRUE(a.contains(2));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.contains(1));
}

TEST(ChoosePull, MatchesBeamerPredicate) {
  // alpha = 20: pull once frontier edge mass exceeds |E|/20.
  EXPECT_FALSE(choose_pull(4, 1, 100, 1000, 20.0, 20.0));
  EXPECT_TRUE(choose_pull(6, 1, 100, 1000, 20.0, 20.0));
  // beta = 20: pull once the frontier exceeds |V|/20 vertices.
  EXPECT_FALSE(choose_pull(0, 50, 100000, 1000, 20.0, 20.0));
  EXPECT_TRUE(choose_pull(0, 51, 100000, 1000, 20.0, 20.0));
}

}  // namespace
}  // namespace bpart::exec
