// Parity gate for the exec core: for EVERY registered partitioner, the
// parallel engine paths must agree with the sequential engines — exactly
// for CC (bit-identical labels and accounting) and SSSP (same fixpoint),
// to 1e-10 L-inf for PageRank (the pull gather associates sums differently
// than the sequential push loop). The dist runtime's per-machine parallel
// compute must agree with the same baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/components.hpp"
#include "dist/pagerank.hpp"
#include "dist/sssp.hpp"
#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "engine/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"

namespace bpart::exec {
namespace {

constexpr partition::PartId kMachines = 4;
constexpr unsigned kThreads = 2;

class ExecParity : public ::testing::TestWithParam<std::string> {
 protected:
  static void SetUpTestSuite() {
    graph::ErdosRenyiConfig er;
    er.num_vertices = 1 << 11;
    er.num_edges = 1 << 14;
    er.seed = 3;
    graph_ =
        new graph::Graph(graph::Graph::from_edges(graph::erdos_renyi(er)));
    const partition::Partition parts =
        partition::create("hash")->partition(*graph_, kMachines);
    pr_ = new engine::PageRankResult(engine::pagerank(*graph_, parts));
    cc_ = new engine::ComponentsResult(
        engine::connected_components(*graph_, parts));
    sssp_ = new engine::SsspResult(engine::sssp(*graph_, parts, 0));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete pr_;
    delete cc_;
    delete sssp_;
    graph_ = nullptr;
    pr_ = nullptr;
    cc_ = nullptr;
    sssp_ = nullptr;
  }

  static graph::Graph* graph_;
  static engine::PageRankResult* pr_;
  static engine::ComponentsResult* cc_;
  static engine::SsspResult* sssp_;
};

graph::Graph* ExecParity::graph_ = nullptr;
engine::PageRankResult* ExecParity::pr_ = nullptr;
engine::ComponentsResult* ExecParity::cc_ = nullptr;
engine::SsspResult* ExecParity::sssp_ = nullptr;

TEST_P(ExecParity, EngineMatchesSequential) {
  const partition::Partition parts =
      partition::create(GetParam())->partition(*graph_, kMachines);

  engine::PageRankConfig pr_cfg;
  pr_cfg.exec.threads = kThreads;
  const auto pr = engine::pagerank(*graph_, parts, pr_cfg);
  double max_err = 0;
  for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v)
    max_err = std::max(max_err, std::abs(pr.rank[v] - pr_->rank[v]));
  EXPECT_LE(max_err, 1e-10);

  ExecConfig ec;
  ec.threads = kThreads;
  const auto cc =
      engine::connected_components(*graph_, parts, {}, 200, ec);
  EXPECT_EQ(cc.label, cc_->label);
  EXPECT_EQ(cc.num_components, cc_->num_components);

  engine::SsspConfig ss_cfg;
  ss_cfg.exec.threads = kThreads;
  const auto ss = engine::sssp(*graph_, parts, 0, ss_cfg);
  EXPECT_EQ(ss.distance, sssp_->distance);
}

TEST_P(ExecParity, DistPerMachineParallelMatchesSequentialEngines) {
  const partition::Partition parts =
      partition::create(GetParam())->partition(*graph_, kMachines);
  dist::DistOptions opts;
  opts.exec.threads = kThreads;

  for (const dist::PrMode mode : {dist::PrMode::kPush, dist::PrMode::kPull}) {
    const auto pr = dist::pagerank(*graph_, parts, {}, mode, opts);
    double max_err = 0;
    for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v)
      max_err = std::max(max_err, std::abs(pr.rank[v] - pr_->rank[v]));
    EXPECT_LE(max_err, 1e-10)
        << (mode == dist::PrMode::kPush ? "push" : "pull");
  }

  const auto cc = dist::connected_components(*graph_, parts, opts);
  EXPECT_EQ(cc.label, cc_->label);
  EXPECT_EQ(cc.num_components, cc_->num_components);

  const auto ss = dist::sssp(*graph_, parts, 0, {}, opts);
  EXPECT_EQ(ss.distance, sssp_->distance);
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, ExecParity,
    ::testing::ValuesIn(partition::all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace bpart::exec
