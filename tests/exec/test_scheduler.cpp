#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "exec/scheduler.hpp"

namespace bpart::exec {
namespace {

std::vector<graph::EdgeId> offsets_for(
    const std::vector<graph::EdgeId>& degrees) {
  std::vector<graph::EdgeId> offsets(degrees.size() + 1, 0);
  std::partial_sum(degrees.begin(), degrees.end(), offsets.begin() + 1);
  return offsets;
}

TEST(ChunkScheduler, RangeChunksPartitionTheRange) {
  const auto offsets = offsets_for({3, 5, 0, 2, 7, 1, 0, 0, 4, 2});
  const auto plan = ChunkScheduler::over_range(offsets, 0, 10, 6);
  ASSERT_GT(plan.num_chunks(), 1u);
  std::uint32_t expect_lo = 0;
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const auto [lo, hi] = plan.chunk(c);
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LT(lo, hi);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 10u);
}

TEST(ChunkScheduler, ChunksRespectEdgeBudget) {
  const std::vector<graph::EdgeId> degrees = {3, 5, 0, 2, 7, 1, 0, 0, 4, 2};
  const auto offsets = offsets_for(degrees);
  const auto plan = ChunkScheduler::over_range(offsets, 0, 10, 8);
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const auto [lo, hi] = plan.chunk(c);
    // A multi-vertex chunk never exceeds the budget; a single vertex may
    // (hubs become singleton chunks).
    if (hi - lo > 1) {
      EXPECT_LE(offsets[hi] - offsets[lo], 8u);
    }
  }
}

TEST(ChunkScheduler, HubBecomesSingletonChunk) {
  const auto offsets = offsets_for({1, 100, 1, 1});
  const auto plan = ChunkScheduler::over_range(offsets, 0, 4, 8);
  bool hub_alone = false;
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const auto [lo, hi] = plan.chunk(c);
    if (lo <= 1 && 1 < hi) hub_alone = (hi - lo == 1);
  }
  EXPECT_TRUE(hub_alone);
}

TEST(ChunkScheduler, EmptyRangeHasNoChunks) {
  const auto plan =
      ChunkScheduler::over_range(std::span<const graph::EdgeId>{}, 0, 0, 64);
  EXPECT_EQ(plan.num_chunks(), 0u);
}

TEST(ChunkScheduler, ZeroDegreeTailRidesAlong) {
  const auto offsets = offsets_for({4, 0, 0, 0});
  const auto plan = ChunkScheduler::over_range(offsets, 0, 4, 64);
  ASSERT_EQ(plan.num_chunks(), 1u);
  EXPECT_EQ(plan.chunk(0), (ChunkScheduler::Range{0, 4}));
}

TEST(ChunkScheduler, ListChunksCoverEveryIndex) {
  const std::vector<graph::EdgeId> degrees = {9, 1, 1, 1, 12, 0, 3, 2};
  const auto plan = ChunkScheduler::over_list(
      degrees.size(), [&](std::size_t i) { return degrees[i]; }, 6);
  std::uint32_t expect_lo = 0;
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const auto [lo, hi] = plan.chunk(c);
    EXPECT_EQ(lo, expect_lo);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, degrees.size());
}

class ExecutorRun : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExecutorRun, EveryChunkExactlyOnce) {
  const std::size_t n = 257;
  std::vector<graph::EdgeId> degrees(n);
  for (std::size_t i = 0; i < n; ++i) degrees[i] = i % 17;
  const auto offsets = offsets_for(degrees);
  const auto plan = ChunkScheduler::over_range(
      offsets, 0, static_cast<graph::VertexId>(n), 32);
  ASSERT_GT(plan.num_chunks(), 4u);

  Executor ex(GetParam());
  std::vector<std::atomic<int>> visits(n);
  for (auto& v : visits) v.store(0);
  const auto stats =
      ex.run(plan, [&](unsigned, std::uint32_t, std::uint32_t lo,
                       std::uint32_t hi) {
        for (std::uint32_t v = lo; v < hi; ++v)
          visits[v].fetch_add(1, std::memory_order_relaxed);
      });
  EXPECT_EQ(stats.chunks, plan.num_chunks());
  for (std::size_t v = 0; v < n; ++v)
    EXPECT_EQ(visits[v].load(), 1) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecutorRun,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Executor, ChunkExceptionPropagatesAndExecutorStaysUsable) {
  const auto offsets = offsets_for(std::vector<graph::EdgeId>(64, 2));
  const auto plan = ChunkScheduler::over_range(offsets, 0, 64, 4);
  Executor ex(4);
  EXPECT_THROW(
      ex.run(plan,
             [&](unsigned, std::uint32_t c, std::uint32_t, std::uint32_t) {
               if (c == 3) throw std::runtime_error("chunk failed");
             }),
      std::runtime_error);

  // The run above cancelled cleanly; the executor serves the next run.
  std::atomic<std::uint32_t> visited{0};
  const auto stats = ex.run(
      plan, [&](unsigned, std::uint32_t, std::uint32_t lo, std::uint32_t hi) {
        visited.fetch_add(hi - lo, std::memory_order_relaxed);
      });
  EXPECT_EQ(stats.chunks, plan.num_chunks());
  EXPECT_EQ(visited.load(), 64u);
}

TEST(ChunkScheduler, ItemChunksPartitionTheCount) {
  const auto plan = ChunkScheduler::over_items(10, 3);
  ASSERT_EQ(plan.num_chunks(), 4u);
  std::uint32_t expect_lo = 0;
  for (std::size_t c = 0; c < plan.num_chunks(); ++c) {
    const auto [lo, hi] = plan.chunk(c);
    EXPECT_EQ(lo, expect_lo);
    EXPECT_LE(hi - lo, 3u);
    expect_lo = hi;
  }
  EXPECT_EQ(expect_lo, 10u);
}

TEST(ChunkScheduler, ItemChunksExactMultiple) {
  const auto plan = ChunkScheduler::over_items(8, 4);
  ASSERT_EQ(plan.num_chunks(), 2u);
  EXPECT_EQ(plan.chunk(0), (ChunkScheduler::Range{0, 4}));
  EXPECT_EQ(plan.chunk(1), (ChunkScheduler::Range{4, 8}));
}

TEST(ChunkScheduler, ItemChunksEmptyAndSingle) {
  EXPECT_EQ(ChunkScheduler::over_items(0, 5).num_chunks(), 0u);
  const auto one = ChunkScheduler::over_items(3, 100);
  ASSERT_EQ(one.num_chunks(), 1u);
  EXPECT_EQ(one.chunk(0), (ChunkScheduler::Range{0, 3}));
}

TEST(ChunkScheduler, ItemChunksBoundariesIgnoreWorkerCount) {
  // The weight-free mode's contract: the plan is a pure function of
  // (count, items_per_chunk) — running it under different executors
  // visits identical [lo, hi) slices.
  const auto plan = ChunkScheduler::over_items(101, 7);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> expect;
  for (std::size_t c = 0; c < plan.num_chunks(); ++c)
    expect.push_back(plan.chunk(c));
  for (const unsigned threads : {1u, 4u}) {
    Executor ex(threads);
    std::mutex mu;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> seen;
    ex.run(plan,
           [&](unsigned, std::uint32_t, std::uint32_t lo, std::uint32_t hi) {
             std::lock_guard<std::mutex> lock(mu);
             seen.emplace_back(lo, hi);
           });
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, expect) << threads << " threads";
  }
}

TEST(ChunkScheduler, ItemChunksRejectZeroChunkSize) {
  EXPECT_THROW((void)ChunkScheduler::over_items(5, 0), CheckError);
}

TEST(Executor, SingleThreadNeverSteals) {
  const auto offsets = offsets_for(std::vector<graph::EdgeId>(32, 1));
  const auto plan = ChunkScheduler::over_range(offsets, 0, 32, 2);
  Executor ex(1);
  const auto stats = ex.run(
      plan, [](unsigned, std::uint32_t, std::uint32_t, std::uint32_t) {});
  EXPECT_EQ(stats.steals, 0u);
}

}  // namespace
}  // namespace bpart::exec
