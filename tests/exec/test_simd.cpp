// The SIMD gather kernel's contract (DESIGN.md §14): a pure function of
// the CSR run — lane assignment and reduction tree fixed by the lane
// count, so the fold is reproducible everywhere — and numerically the same
// sum as the strict left fold up to reassociation error. Runs shorter than
// one lane block take the scalar tail only, so they are bit-equal to the
// legacy fold regardless of the build flag.
#include "exec/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace bpart::exec::simd {
namespace {

struct GatherRun {
  std::vector<graph::VertexId> idx;
  std::vector<double> vals;
};

GatherRun random_run(std::size_t n, std::size_t num_vals, std::uint64_t seed) {
  GatherRun r;
  Xoshiro256 rng(seed);
  r.vals.resize(num_vals);
  for (double& v : r.vals) v = rng.uniform() * 2.0 - 1.0;
  r.idx.resize(n);
  for (graph::VertexId& i : r.idx)
    i = static_cast<graph::VertexId>(rng.bounded(num_vals));
  return r;
}

/// Lane-exact oracle: eight independent left folds + the fixed reduction
/// tree + scalar tail, written without the prefetch/unroll plumbing.
double reference_lane_fold(const GatherRun& r) {
  double lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= r.idx.size(); i += 8)
    for (std::size_t l = 0; l < 8; ++l) lane[l] += r.vals[r.idx[i + l]];
  double acc = ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
               ((lane[4] + lane[5]) + (lane[6] + lane[7]));
  for (; i < r.idx.size(); ++i) acc += r.vals[r.idx[i]];
  return acc;
}

TEST(GatherSum, SimdMatchesLaneOracleBitExactly) {
  // The kernel's fold order is part of the determinism envelope: any
  // reassociation beyond the documented 8-lane tree is a contract break,
  // so the comparison is bitwise, not approximate.
  for (const std::size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 63u, 64u, 1000u}) {
    const GatherRun r = random_run(n, 512, 31 + n);
    EXPECT_EQ(gather_sum_simd(r.idx.data(), n, r.vals.data()),
              reference_lane_fold(r))
        << "n = " << n;
  }
}

TEST(GatherSum, ShortRunsAreBitEqualToScalar) {
  // n < 8 never enters the lane block: all lanes stay zero and the scalar
  // tail is the legacy left fold, so the two kernels agree bitwise. This
  // keeps low-degree vertices (most of a power-law graph) outside the
  // SIMD-on/off ulp envelope entirely.
  for (std::size_t n = 0; n < 8; ++n) {
    const GatherRun r = random_run(n, 64, 101 + n);
    EXPECT_EQ(gather_sum_simd(r.idx.data(), n, r.vals.data()),
              gather_sum_scalar(r.idx.data(), n, r.vals.data()))
        << "n = " << n;
  }
}

TEST(GatherSum, SimdAgreesWithScalarNumerically) {
  // Same addends, different association: relative error bounded far below
  // anything an engine tolerance would notice.
  for (const std::size_t n : {64u, 1000u, 4096u}) {
    const GatherRun r = random_run(n, 2048, 7 * n);
    const double scalar = gather_sum_scalar(r.idx.data(), n, r.vals.data());
    const double simd = gather_sum_simd(r.idx.data(), n, r.vals.data());
    EXPECT_NEAR(simd, scalar, 1e-12 * std::max(1.0, std::abs(scalar)))
        << "n = " << n;
  }
}

TEST(GatherSum, DispatchFollowsBuildFlag) {
  const GatherRun r = random_run(256, 512, 5);
  const double got = gather_sum(r.idx.data(), r.idx.size(), r.vals.data());
  const double want =
      kEnabled ? gather_sum_simd(r.idx.data(), r.idx.size(), r.vals.data())
               : gather_sum_scalar(r.idx.data(), r.idx.size(), r.vals.data());
  EXPECT_EQ(got, want);
  EXPECT_EQ(gather_sum(std::span<const graph::VertexId>(r.idx),
                       r.vals.data()),
            got);
}

TEST(GatherSum, DeterministicAcrossCalls) {
  const GatherRun r = random_run(4096, 4096, 13);
  const double first = gather_sum_simd(r.idx.data(), r.idx.size(),
                                       r.vals.data());
  for (int rep = 0; rep < 8; ++rep)
    ASSERT_EQ(gather_sum_simd(r.idx.data(), r.idx.size(), r.vals.data()),
              first);
}

}  // namespace
}  // namespace bpart::exec::simd
