#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"
#include "util/check.hpp"

namespace bpart::graph {
namespace {

EdgeList two_triangles() {
  // Components {0,1,2} and {3,4,5}, undirected.
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 0);
  el.add_undirected(3, 4);
  el.add_undirected(4, 5);
  el.add_undirected(5, 3);
  return el;
}

TEST(Analyze, BasicCounts) {
  const Graph g = Graph::from_edges(two_triangles());
  const GraphStats s = analyze(g);
  EXPECT_EQ(s.num_vertices, 6u);
  EXPECT_EQ(s.num_edges, 12u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_EQ(s.isolated_vertices, 0u);
  EXPECT_TRUE(s.symmetric);
  EXPECT_DOUBLE_EQ(s.degree_gini, 0.0);  // regular graph
}

TEST(Analyze, CountsIsolatedVertices) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(5);
  const GraphStats s = analyze(Graph::from_edges(el));
  // Vertices 2, 3, 4 have no edges in either direction.
  EXPECT_EQ(s.isolated_vertices, 3u);
}

TEST(DegreeHistogram, MatchesDegrees) {
  const Graph g = Graph::from_edges(two_triangles());
  const LogHistogram h = degree_histogram(g);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket_count(1), 6u);  // all degrees are 2 -> bucket [2,4)
}

TEST(ConnectedComponents, FindsBothTriangles) {
  const Graph g = Graph::from_edges(two_triangles());
  const auto labels = connected_components(g);
  EXPECT_EQ(count_components(labels), 2u);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
}

TEST(ConnectedComponents, DirectedEdgesCountBothWays) {
  // 0 -> 1 only; still one undirected component.
  EdgeList el;
  el.add(0, 1);
  const auto labels = connected_components(Graph::from_edges(el));
  EXPECT_EQ(count_components(labels), 1u);
}

TEST(ConnectedComponents, IsolatedVerticesAreOwnComponents) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(4);
  const auto labels = connected_components(Graph::from_edges(el));
  EXPECT_EQ(count_components(labels), 3u);
}

TEST(ConnectedComponents, LabelsAreDense) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(6);
  const auto labels = connected_components(Graph::from_edges(el));
  std::set<VertexId> distinct(labels.begin(), labels.end());
  // Dense labels 0..k-1.
  VertexId expect = 0;
  for (VertexId l : distinct) EXPECT_EQ(l, expect++);
}

TEST(CountComponents, EmptyGraph) {
  EXPECT_EQ(count_components({}), 0u);
}

TEST(ReachableFrom, FollowsOutEdgesOnly) {
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 1);  // 3 reaches 1 but 0 does not reach 3
  const Graph g = Graph::from_edges(el);
  const auto seen = reachable_from(g, 0);
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_FALSE(seen[3]);
}

TEST(ReachableFrom, RejectsOutOfRangeSource) {
  const Graph g = Graph::from_edges(two_triangles());
  EXPECT_THROW(reachable_from(g, 100), CheckError);
}

TEST(Analyze, RmatGiantComponentExists) {
  RmatConfig cfg;
  cfg.scale = 10;
  cfg.edge_factor = 8;
  const Graph g = Graph::from_edges_symmetric(rmat(cfg));
  const auto labels = connected_components(g);
  // Count members of the largest component.
  std::vector<std::uint32_t> sizes(count_components(labels), 0);
  for (VertexId l : labels) ++sizes[l];
  const auto largest = *std::max_element(sizes.begin(), sizes.end());
  EXPECT_GT(largest, g.num_vertices() / 2);
}

}  // namespace
}  // namespace bpart::graph
