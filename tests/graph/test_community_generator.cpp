// Tests for community_scale_free — the dataset stand-in generator whose
// structural knobs carry the whole evaluation (see DESIGN.md §2).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::graph {
namespace {

CommunityGraphConfig base_config() {
  CommunityGraphConfig cfg;
  cfg.num_vertices = 8192;
  cfg.avg_degree = 16;
  cfg.num_communities = 32;
  cfg.seed = 5;
  return cfg;
}

TEST(CommunityGraph, HitsTargetSize) {
  const auto cfg = base_config();
  const EdgeList el = community_scale_free(cfg);
  EXPECT_EQ(el.num_vertices(), cfg.num_vertices);
  // Undirected pair count = n * avg / 2 (exact by construction).
  EXPECT_EQ(el.size(), static_cast<std::size_t>(cfg.num_vertices) * 8);
}

TEST(CommunityGraph, SymmetrizedAverageDegreeMatches) {
  const auto cfg = base_config();
  const Graph g = Graph::from_edges_symmetric(community_scale_free(cfg));
  EXPECT_NEAR(g.avg_degree(), cfg.avg_degree, 0.01);
}

TEST(CommunityGraph, EdgesAreDistinctCanonicalPairs) {
  const EdgeList el = community_scale_free(base_config());
  std::vector<Edge> sorted(el.edges().begin(), el.edges().end());
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  for (const Edge& e : el.edges()) {
    EXPECT_LT(e.src, e.dst);  // canonical direction, no self-loops
  }
}

TEST(CommunityGraph, Deterministic) {
  const EdgeList a = community_scale_free(base_config());
  const EdgeList b = community_scale_free(base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 131) EXPECT_EQ(a[i], b[i]);
}

TEST(CommunityGraph, SeedChangesEdges) {
  auto cfg = base_config();
  const EdgeList a = community_scale_free(cfg);
  cfg.seed = 6;
  const EdgeList b = community_scale_free(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++diff;
  EXPECT_GT(diff, a.size() / 2);
}

TEST(CommunityGraph, ScaleFreeDegrees) {
  const Graph g = Graph::from_edges_symmetric(
      community_scale_free(base_config()));
  const auto degrees = stats::to_doubles(g.out_degrees());
  EXPECT_GT(stats::gini(degrees), 0.4);
  EXPECT_GT(stats::max_over_mean(degrees), 5.0);
}

TEST(CommunityGraph, MinDegreeFloorHolds) {
  auto cfg = base_config();
  cfg.min_degree = 2;
  const Graph g = Graph::from_edges_symmetric(community_scale_free(cfg));
  std::uint64_t below = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (g.out_degree(v) < cfg.min_degree) ++below;
  // The floor is best-effort (8 dedup attempts per edge) but must cover
  // essentially everyone.
  EXPECT_LT(below, g.num_vertices() / 100);
  const GraphStats s = analyze(g);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(CommunityGraph, MixingControlsCommunityCut) {
  // The edge-cut achievable by cutting along communities tracks `mixing`.
  // Communities are laid out contiguously, so a contiguous 8-way split
  // approximates a community-aligned cut; its ratio must rise with mixing.
  auto measure = [](double mixing) {
    auto cfg = base_config();
    cfg.mixing = mixing;
    cfg.id_noise = 0.0;  // pure community layout
    cfg.degree_position_corr = 0.0;
    const Graph g = Graph::from_edges_symmetric(community_scale_free(cfg));
    // Count edges crossing the 8 contiguous blocks.
    const VertexId block = g.num_vertices() / 8;
    std::uint64_t cut = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (VertexId u : g.out_neighbors(v))
        if (v / block != u / block) ++cut;
    return static_cast<double>(cut) / static_cast<double>(g.num_edges());
  };
  const double lo = measure(0.1);
  const double hi = measure(0.7);
  EXPECT_LT(lo, 0.4);
  EXPECT_GT(hi, lo + 0.25);
}

TEST(CommunityGraph, DegreePositionCorrelationSlopesEdgeMass) {
  // With corr = 1 the first id quartile must hold far more edge mass than
  // the last; with corr = 0 they should be comparable.
  auto first_over_last = [](double corr) {
    auto cfg = base_config();
    cfg.degree_position_corr = corr;
    const Graph g = Graph::from_edges_symmetric(community_scale_free(cfg));
    const VertexId q = g.num_vertices() / 4;
    EdgeId first = 0, last = 0;
    for (VertexId v = 0; v < q; ++v) first += g.out_degree(v);
    for (VertexId v = g.num_vertices() - q; v < g.num_vertices(); ++v)
      last += g.out_degree(v);
    return static_cast<double>(first) / static_cast<double>(last);
  };
  EXPECT_GT(first_over_last(1.0), 3.0);
  EXPECT_LT(first_over_last(0.0), 1.5);
}

TEST(CommunityGraph, CommunitySizeCapRespected) {
  auto cfg = base_config();
  cfg.max_community_factor = 2.0;
  cfg.id_noise = 0.0;
  cfg.degree_position_corr = 0.0;
  // With a hard cap, no community exceeds cap = factor * n / C. We can't
  // observe communities directly, but with zero noise the layout is
  // community-contiguous, so the largest homogeneous block is bounded.
  // Proxy check: generation completes and the graph is intact.
  const EdgeList el = community_scale_free(cfg);
  EXPECT_EQ(el.num_vertices(), cfg.num_vertices);
  EXPECT_GT(el.size(), 0u);
}

TEST(CommunityGraph, MixingZeroWithSingletonCommunitiesTerminates) {
  // Regression guard: singleton communities with mixing = 0 must not
  // live-lock the generator.
  CommunityGraphConfig cfg;
  cfg.num_vertices = 256;
  cfg.num_communities = 256;  // all singletons
  cfg.avg_degree = 4;
  cfg.mixing = 0.0;
  const EdgeList el = community_scale_free(cfg);
  EXPECT_GT(el.size(), 0u);
}

TEST(CommunityGraph, ValidatesConfig) {
  CommunityGraphConfig cfg;
  cfg.mixing = 1.5;
  EXPECT_THROW(community_scale_free(cfg), CheckError);
  cfg = CommunityGraphConfig{};
  cfg.id_noise = -0.1;
  EXPECT_THROW(community_scale_free(cfg), CheckError);
  cfg = CommunityGraphConfig{};
  cfg.degree_position_corr = 2.0;
  EXPECT_THROW(community_scale_free(cfg), CheckError);
  cfg = CommunityGraphConfig{};
  cfg.num_vertices = 2;
  EXPECT_THROW(community_scale_free(cfg), CheckError);
}

}  // namespace
}  // namespace bpart::graph
