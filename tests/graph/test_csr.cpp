#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace bpart::graph {
namespace {

EdgeList triangle_plus_tail() {
  // 0 -> 1 -> 2 -> 0 (directed triangle) plus 2 -> 3.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(2, 3);
  return el;
}

TEST(Graph, CountsMatchEdgeList) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 1.0);
}

TEST(Graph, OutAdjacency) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  const auto n2 = g.out_neighbors(2);
  ASSERT_EQ(n2.size(), 2u);
  EXPECT_EQ(n2[0], 0u);  // sorted
  EXPECT_EQ(n2[1], 3u);
}

TEST(Graph, InAdjacency) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  EXPECT_EQ(g.in_degree(0), 1u);
  EXPECT_EQ(g.in_degree(3), 1u);
  const auto in0 = g.in_neighbors(0);
  ASSERT_EQ(in0.size(), 1u);
  EXPECT_EQ(in0[0], 2u);
}

TEST(Graph, OutNeighborIndexAccess) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  EXPECT_EQ(g.out_neighbor(2, 0), 0u);
  EXPECT_EQ(g.out_neighbor(2, 1), 3u);
  EXPECT_EQ(g.out_edge_index(2, 1), g.out_edge_index(2, 0) + 1);
}

TEST(Graph, NeighborsAreSortedRegardlessOfInsertOrder) {
  EdgeList el;
  el.add(0, 9);
  el.add(0, 3);
  el.add(0, 7);
  el.add(0, 1);
  const Graph g = Graph::from_edges(el);
  const auto nbrs = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, ParallelEdgesPreserved) {
  EdgeList el;
  el.add(0, 1);
  el.add(0, 1);
  const Graph g = Graph::from_edges(el);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(EdgeList{});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 0.0);
}

TEST(Graph, IsolatedVerticesKeepZeroDegrees) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(5);
  const Graph g = Graph::from_edges(el);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.out_degree(4), 0u);
  EXPECT_EQ(g.in_degree(4), 0u);
  EXPECT_TRUE(g.out_neighbors(4).empty());
}

TEST(Graph, SymmetricDetection) {
  EdgeList sym;
  sym.add(0, 1);
  sym.add(1, 0);
  EXPECT_TRUE(Graph::from_edges(sym).is_symmetric());
  EdgeList asym;
  asym.add(0, 1);
  EXPECT_FALSE(Graph::from_edges(asym).is_symmetric());
}

TEST(Graph, FromEdgesSymmetricCleansInput) {
  EdgeList el;
  el.add(0, 0);  // self-loop: removed
  el.add(0, 1);  // reverse added
  el.add(1, 0);  // duplicate after symmetrize: collapsed
  const Graph g = Graph::from_edges_symmetric(el);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
}

TEST(Graph, OutDegreesVector) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  const auto deg = g.out_degrees();
  const std::vector<EdgeId> expect{1, 1, 2, 0};
  EXPECT_EQ(deg, expect);
}

TEST(Graph, SumOfDegreesEqualsEdges) {
  const Graph g = Graph::from_edges(triangle_plus_tail());
  EdgeId total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    total += g.out_degree(v);
  }
  EXPECT_EQ(total, g.num_edges());
}

}  // namespace
}  // namespace bpart::graph
