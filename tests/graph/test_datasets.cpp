#include "graph/datasets.hpp"

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "util/stats.hpp"

namespace bpart::graph {
namespace {

TEST(Datasets, RegistryHasThreePaperGraphs) {
  const auto& specs = dataset_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "livejournal");
  EXPECT_EQ(specs[1].name, "twitter");
  EXPECT_EQ(specs[2].name, "friendster");
}

TEST(Datasets, LookupByName) {
  EXPECT_EQ(dataset_spec("twitter").name, "twitter");
  EXPECT_THROW(dataset_spec("facebook"), std::out_of_range);
}

TEST(Datasets, AverageDegreesOrderedLikePaper) {
  // Paper: d̄(LiveJournal)=30 < d̄(Twitter)=35.7 < d̄(Friendster)=54.9.
  const Graph lj = livejournal_like();
  const Graph tw = twitter_like();
  const Graph fr = friendster_like();
  EXPECT_LT(lj.avg_degree(), tw.avg_degree());
  EXPECT_LT(tw.avg_degree(), fr.avg_degree());
  // And approximately matching (symmetrization dedup loses a little).
  EXPECT_NEAR(lj.avg_degree(), 30.0, 6.0);
  EXPECT_NEAR(tw.avg_degree(), 35.7, 7.0);
  EXPECT_NEAR(fr.avg_degree(), 54.9, 11.0);
}

TEST(Datasets, GraphsAreSymmetricSocialNetworks) {
  const Graph g = livejournal_like();
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Datasets, GraphsAreScaleFree) {
  // The scale-free property drives every result in the paper; assert the
  // stand-ins actually have it.
  const Graph g = twitter_like();
  const auto degrees = stats::to_doubles(g.out_degrees());
  EXPECT_GT(stats::gini(degrees), 0.45);
  EXPECT_GT(stats::max_over_mean(degrees), 8.0);
}

TEST(Datasets, DeterministicAcrossBuilds) {
  const Graph a = twitter_like();
  const Graph b = twitter_like();
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (VertexId v = 0; v < a.num_vertices(); v += 997)
    EXPECT_EQ(a.out_degree(v), b.out_degree(v));
}

TEST(Datasets, SizesAreDistinct) {
  const Graph lj = livejournal_like();
  const Graph fr = friendster_like();
  EXPECT_LT(lj.num_vertices(), fr.num_vertices());
  EXPECT_LT(lj.num_edges(), fr.num_edges());
}

}  // namespace
}  // namespace bpart::graph
