#include "graph/edge_list.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace bpart::graph {
namespace {

TEST(EdgeList, AddGrowsVertexCount) {
  EdgeList el;
  el.add(0, 5);
  EXPECT_EQ(el.num_vertices(), 6u);
  el.add(9, 1);
  EXPECT_EQ(el.num_vertices(), 10u);
  EXPECT_EQ(el.size(), 2u);
}

TEST(EdgeList, AddUndirectedAddsBothDirections) {
  EdgeList el;
  el.add_undirected(1, 2);
  ASSERT_EQ(el.size(), 2u);
  EXPECT_EQ(el[0], (Edge{1, 2}));
  EXPECT_EQ(el[1], (Edge{2, 1}));
}

TEST(EdgeList, AppendCoveringMaxVertexGrowsCount) {
  EdgeList el;
  const std::vector<Edge> batch{{0, 5}, {3, 2}};
  el.append(batch, 5);
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el.num_vertices(), 6u);
}

TEST(EdgeList, AppendValidatesClaimedMaxVertex) {
  // Regression: append() used to trust the caller's max_vertex, so an
  // undercount left num_vertices() smaller than an endpoint and every CSR
  // built from the list indexed out of bounds. Debug builds assert the
  // contract; release builds clamp to the real bound.
  EdgeList el;
  const std::vector<Edge> batch{{0, 7}, {2, 1}};
#ifdef NDEBUG
  el.append(batch, 1);  // Claims max endpoint 1; batch reaches 7.
  EXPECT_EQ(el.num_vertices(), 8u);
#else
  EXPECT_THROW(el.append(batch, 1), CheckError);
#endif
  // A correct bound still works either way.
  EdgeList ok;
  ok.append(batch, 7);
  EXPECT_EQ(ok.num_vertices(), 8u);
  EXPECT_EQ(ok.out_degrees().size(), 8u);
}

TEST(EdgeList, SetNumVerticesAllowsIsolatedTail) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(10);
  EXPECT_EQ(el.num_vertices(), 10u);
}

TEST(EdgeList, SetNumVerticesRejectsTruncation) {
  EdgeList el;
  el.add(0, 5);
  EXPECT_THROW(el.set_num_vertices(3), CheckError);
}

TEST(EdgeList, RemoveSelfLoops) {
  EdgeList el;
  el.add(0, 0);
  el.add(0, 1);
  el.add(1, 1);
  EXPECT_EQ(el.remove_self_loops(), 2u);
  EXPECT_EQ(el.size(), 1u);
  EXPECT_EQ(el[0], (Edge{0, 1}));
}

TEST(EdgeList, SortAndDedup) {
  EdgeList el;
  el.add(2, 3);
  el.add(0, 1);
  el.add(2, 3);
  el.add(0, 1);
  el.add(0, 2);
  EXPECT_EQ(el.sort_and_dedup(), 2u);
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el[0], (Edge{0, 1}));
  EXPECT_EQ(el[1], (Edge{0, 2}));
  EXPECT_EQ(el[2], (Edge{2, 3}));
}

TEST(EdgeList, SymmetrizeMakesSymmetric) {
  EdgeList el;
  el.add(0, 1);
  el.add(2, 1);
  EXPECT_FALSE(el.is_symmetric());
  el.symmetrize();
  EXPECT_TRUE(el.is_symmetric());
  EXPECT_EQ(el.size(), 4u);
}

TEST(EdgeList, SymmetrizeIsIdempotent) {
  EdgeList el;
  el.add(0, 1);
  el.symmetrize();
  const std::size_t size_once = el.size();
  el.symmetrize();
  EXPECT_EQ(el.size(), size_once);
}

TEST(EdgeList, IsSymmetricOnEmpty) {
  EdgeList el;
  EXPECT_TRUE(el.is_symmetric());
}

TEST(EdgeList, OutDegrees) {
  EdgeList el;
  el.add(0, 1);
  el.add(0, 2);
  el.add(2, 0);
  el.set_num_vertices(4);
  const auto deg = el.out_degrees();
  ASSERT_EQ(deg.size(), 4u);
  EXPECT_EQ(deg[0], 2u);
  EXPECT_EQ(deg[1], 0u);
  EXPECT_EQ(deg[2], 1u);
  EXPECT_EQ(deg[3], 0u);
}

}  // namespace
}  // namespace bpart::graph
