#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/analysis.hpp"
#include "graph/csr.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::graph {
namespace {

TEST(Rmat, ProducesRequestedSize) {
  RmatConfig cfg;
  cfg.scale = 10;
  cfg.edge_factor = 8;
  const EdgeList el = rmat(cfg);
  EXPECT_EQ(el.num_vertices(), 1u << 10);
  EXPECT_EQ(el.size(), 8u << 10);
}

TEST(Rmat, DeterministicForSeed) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.seed = 123;
  const EdgeList a = rmat(cfg);
  const EdgeList b = rmat(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Rmat, SeedsChangeTheGraph) {
  RmatConfig cfg;
  cfg.scale = 8;
  cfg.seed = 1;
  const EdgeList a = rmat(cfg);
  cfg.seed = 2;
  const EdgeList b = rmat(cfg);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] != b[i]) ++diff;
  EXPECT_GT(diff, a.size() / 2);
}

TEST(Rmat, SkewedQuadrantsGiveSkewedDegrees) {
  // The whole premise of the paper: R-MAT with Graph500 parameters is
  // scale-free, so degree inequality (gini) must be high; a uniform R-MAT
  // (a=b=c=d=0.25, which is Erdős–Rényi-like) must be much flatter.
  RmatConfig skewed;
  skewed.scale = 12;
  skewed.edge_factor = 16;
  const Graph gs = Graph::from_edges(rmat(skewed));
  RmatConfig uniform = skewed;
  uniform.a = uniform.b = uniform.c = uniform.d = 0.25;
  const Graph gu = Graph::from_edges(rmat(uniform));

  const double gini_s = stats::gini(stats::to_doubles(gs.out_degrees()));
  const double gini_u = stats::gini(stats::to_doubles(gu.out_degrees()));
  EXPECT_GT(gini_s, 0.5);
  EXPECT_LT(gini_u, 0.3);
  EXPECT_GT(gini_s, gini_u + 0.3);
}

TEST(Rmat, ScrambleKeepsDegreeMultiset) {
  RmatConfig cfg;
  cfg.scale = 9;
  cfg.scramble_ids = false;
  auto plain = Graph::from_edges(rmat(cfg)).out_degrees();
  cfg.scramble_ids = true;
  auto scrambled = Graph::from_edges(rmat(cfg)).out_degrees();
  std::sort(plain.begin(), plain.end());
  std::sort(scrambled.begin(), scrambled.end());
  EXPECT_EQ(plain, scrambled);
}

TEST(Rmat, ScrambleBreaksIdLocality) {
  // Unscrambled R-MAT concentrates high degrees at low ids; after
  // scrambling the first-half/second-half degree mass should be ~equal.
  RmatConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 8;
  cfg.scramble_ids = true;
  const Graph g = Graph::from_edges(rmat(cfg));
  const VertexId half = g.num_vertices() / 2;
  EdgeId lo = 0, hi = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    (v < half ? lo : hi) += g.out_degree(v);
  const double ratio = static_cast<double>(lo) / static_cast<double>(hi);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Rmat, RejectsBadProbabilities) {
  RmatConfig cfg;
  cfg.a = 0.9;  // sum > 1
  EXPECT_THROW(rmat(cfg), CheckError);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  BarabasiAlbertConfig cfg;
  cfg.num_vertices = 2000;
  cfg.attach = 4;
  const Graph g = Graph::from_edges(barabasi_albert(cfg));
  EXPECT_EQ(g.num_vertices(), 2000u);
  // Every non-seed vertex attaches `attach` undirected edges.
  for (VertexId v = cfg.attach + 1; v < g.num_vertices(); ++v)
    EXPECT_GE(g.out_degree(v), cfg.attach);
}

TEST(BarabasiAlbert, IsSymmetric) {
  BarabasiAlbertConfig cfg;
  cfg.num_vertices = 500;
  cfg.attach = 3;
  EXPECT_TRUE(barabasi_albert(cfg).is_symmetric());
}

TEST(BarabasiAlbert, HasPowerLawTail) {
  BarabasiAlbertConfig cfg;
  cfg.num_vertices = 5000;
  cfg.attach = 4;
  const Graph g = Graph::from_edges(barabasi_albert(cfg));
  const GraphStats s = analyze(g);
  // Hubs far above the minimum degree and negative log-log slope.
  EXPECT_GT(s.max_out_degree, 20 * cfg.attach);
  EXPECT_LT(s.power_law_slope, -0.8);
}

TEST(ErdosRenyi, ExactEdgeCount) {
  ErdosRenyiConfig cfg;
  cfg.num_vertices = 1000;
  cfg.num_edges = 5000;
  const EdgeList el = erdos_renyi(cfg);
  EXPECT_EQ(el.size(), 5000u);
  EXPECT_EQ(el.num_vertices(), 1000u);
  for (const Edge& e : el.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(ErdosRenyi, FlatDegreeDistribution) {
  ErdosRenyiConfig cfg;
  cfg.num_vertices = 4000;
  cfg.num_edges = 40000;
  const Graph g = Graph::from_edges(erdos_renyi(cfg));
  EXPECT_LT(stats::gini(stats::to_doubles(g.out_degrees())), 0.25);
}

TEST(WattsStrogatz, DegreeIsTwoK) {
  WattsStrogatzConfig cfg;
  cfg.num_vertices = 1000;
  cfg.k = 5;
  cfg.beta = 0.0;  // pure ring lattice
  const Graph g = Graph::from_edges(watts_strogatz(cfg));
  // beta=0: every vertex has exactly k out-edges added from itself plus k
  // added by neighbors -> total degree 2k in the undirected edge list.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(g.out_degree(v), 2 * cfg.k);
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  WattsStrogatzConfig cfg;
  cfg.num_vertices = 500;
  cfg.k = 4;
  cfg.beta = 0.5;
  const EdgeList el = watts_strogatz(cfg);
  EXPECT_EQ(el.size(), static_cast<std::size_t>(cfg.num_vertices) * cfg.k * 2);
}

TEST(ChungLu, HitsTargetAverageDegree) {
  ChungLuConfig cfg;
  cfg.num_vertices = 4000;
  cfg.avg_degree = 10.0;
  const Graph g = Graph::from_edges(chung_lu(cfg));
  EXPECT_NEAR(g.avg_degree(), 10.0, 0.01);
}

TEST(ChungLu, SkewIncreasesAsExponentDrops) {
  ChungLuConfig heavy;
  heavy.num_vertices = 4000;
  heavy.avg_degree = 12;
  heavy.exponent = 1.8;
  ChungLuConfig light = heavy;
  light.exponent = 3.5;
  const double gini_heavy = stats::gini(
      stats::to_doubles(Graph::from_edges(chung_lu(heavy)).out_degrees()));
  const double gini_light = stats::gini(
      stats::to_doubles(Graph::from_edges(chung_lu(light)).out_degrees()));
  EXPECT_GT(gini_heavy, gini_light);
}

}  // namespace
}  // namespace bpart::graph
