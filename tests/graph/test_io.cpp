#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace bpart::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs sibling tests of this fixture in
    // parallel processes, and a shared directory makes TearDown of one
    // race the writes of another.
    dir_ = std::filesystem::temp_directory_path() /
           ("bpart_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TextRoundTrip) {
  EdgeList el;
  el.add(0, 1);
  el.add(3, 2);
  el.add(1, 0);
  save_text_edges(el, path("g.txt"));
  const EdgeList loaded = load_text_edges(path("g.txt"));
  ASSERT_EQ(loaded.size(), el.size());
  for (std::size_t i = 0; i < el.size(); ++i) EXPECT_EQ(loaded[i], el[i]);
  EXPECT_EQ(loaded.num_vertices(), el.num_vertices());
}

TEST_F(IoTest, TextParsesCommentsAndBlanks) {
  std::ofstream f(path("c.txt"));
  f << "# comment\n\n% another comment\n 0 1\n2\t3\n4,5\n";
  f.close();
  const EdgeList el = load_text_edges(path("c.txt"));
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el[0], (Edge{0, 1}));
  EXPECT_EQ(el[1], (Edge{2, 3}));
  EXPECT_EQ(el[2], (Edge{4, 5}));
}

TEST_F(IoTest, TextHandlesTrailingWhitespaceAndCrlf) {
  std::ofstream f(path("w.txt"), std::ios::binary);
  f << "7 8 \r\n9 10\r\n";
  f.close();
  const EdgeList el = load_text_edges(path("w.txt"));
  ASSERT_EQ(el.size(), 2u);
  EXPECT_EQ(el[0], (Edge{7, 8}));
  EXPECT_EQ(el[1], (Edge{9, 10}));
}

TEST_F(IoTest, TextHandlesCrlfBlankAndCommentLines) {
  // Verbatim shape of a SNAP dump saved with Windows line endings: CRLF
  // everywhere, a blank CRLF line, and a '\r'-terminated comment.
  std::ofstream f(path("crlf.txt"), std::ios::binary);
  f << "# Directed graph\r\n\r\n0 1\r\n1\t2\r\n\r\n2 3\r\n";
  f.close();
  const EdgeList el = load_text_edges(path("crlf.txt"));
  ASSERT_EQ(el.size(), 3u);
  EXPECT_EQ(el[0], (Edge{0, 1}));
  EXPECT_EQ(el[1], (Edge{1, 2}));
  EXPECT_EQ(el[2], (Edge{2, 3}));
}

TEST_F(IoTest, TextHandlesEmptyTrailingLines) {
  std::ofstream f(path("trail.txt"), std::ios::binary);
  f << "0 1\n1 2\n\n\n   \n\t\n";
  f.close();
  EXPECT_EQ(load_text_edges(path("trail.txt")).size(), 2u);
}

TEST_F(IoTest, TextIgnoresExtraColumns) {
  // KONECT dumps carry weight/timestamp columns after "src dst".
  std::ofstream f(path("cols.txt"), std::ios::binary);
  f << "0 1 1.5 1234567890\r\n2 3 0.25\n";
  f.close();
  const EdgeList el = load_text_edges(path("cols.txt"));
  ASSERT_EQ(el.size(), 2u);
  EXPECT_EQ(el[0], (Edge{0, 1}));
  EXPECT_EQ(el[1], (Edge{2, 3}));
}

TEST_F(IoTest, TextRejectsMalformedLineInCrlfFile) {
  std::ofstream f(path("badcrlf.txt"), std::ios::binary);
  f << "0 1\r\nbogus line\r\n";
  f.close();
  try {
    load_text_edges(path("badcrlf.txt"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos)
        << "error should cite line 2: " << e.what();
  }
}

TEST_F(IoTest, TextRejectsNegativeAndNonNumericIds) {
  std::ofstream f(path("neg.txt"));
  f << "-1 2\n";
  f.close();
  EXPECT_THROW(load_text_edges(path("neg.txt")), std::runtime_error);
  std::ofstream g(path("alpha.txt"));
  g << "a b\n";
  g.close();
  EXPECT_THROW(load_text_edges(path("alpha.txt")), std::runtime_error);
}

TEST_F(IoTest, TextRejectsMalformedLine) {
  std::ofstream f(path("bad.txt"));
  f << "0 1\nnot_an_edge\n";
  f.close();
  try {
    load_text_edges(path("bad.txt"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos)
        << "error should cite line 2: " << e.what();
  }
}

TEST_F(IoTest, TextRejectsMissingDst) {
  std::ofstream f(path("half.txt"));
  f << "42\n";
  f.close();
  EXPECT_THROW(load_text_edges(path("half.txt")), std::runtime_error);
}

TEST_F(IoTest, TextMissingFileThrows) {
  EXPECT_THROW(load_text_edges(path("nope.txt")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripLargeGraph) {
  RmatConfig cfg;
  cfg.scale = 10;
  cfg.edge_factor = 8;
  const EdgeList el = rmat(cfg);
  save_binary_edges(el, path("g.bin"));
  const EdgeList loaded = load_binary_edges(path("g.bin"));
  ASSERT_EQ(loaded.size(), el.size());
  EXPECT_EQ(loaded.num_vertices(), el.num_vertices());
  for (std::size_t i = 0; i < el.size(); i += 97) EXPECT_EQ(loaded[i], el[i]);
}

TEST_F(IoTest, BinaryPreservesIsolatedVertices) {
  EdgeList el;
  el.add(0, 1);
  el.set_num_vertices(100);
  save_binary_edges(el, path("iso.bin"));
  EXPECT_EQ(load_binary_edges(path("iso.bin")).num_vertices(), 100u);
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  std::ofstream f(path("junk.bin"), std::ios::binary);
  f << "this is not a graph file at all, padded to header size.....";
  f.close();
  EXPECT_THROW(load_binary_edges(path("junk.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncatedFile) {
  EdgeList el;
  for (VertexId v = 0; v < 100; ++v) el.add(v, (v + 1) % 100);
  save_binary_edges(el, path("t.bin"));
  // Chop the file in half.
  const auto full = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW(load_binary_edges(path("t.bin")), std::runtime_error);
}

}  // namespace
}  // namespace bpart::graph
