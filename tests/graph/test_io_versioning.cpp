// Binary-format versioning: a future-version file must fail loudly, not
// load garbage.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "graph/io.hpp"

namespace bpart::graph {
namespace {

TEST(BinaryVersioning, FutureVersionRejectedWithClearError) {
  const auto dir = std::filesystem::temp_directory_path() / "bpart_io_ver";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "v.bin").string();

  // Write a valid file, then bump the version field in place (offset 8,
  // right after the 64-bit magic).
  EdgeList el;
  el.add(0, 1);
  save_binary_edges(el, path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    const std::uint32_t future = 999;
    f.write(reinterpret_cast<const char*>(&future), sizeof(future));
  }
  try {
    load_binary_edges(path);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
  std::filesystem::remove_all(dir);
}

TEST(BinaryVersioning, HeaderSmallerThanFileIsCaught) {
  const auto dir = std::filesystem::temp_directory_path() / "bpart_io_ver2";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "tiny.bin").string();
  std::ofstream f(path, std::ios::binary);
  f << "xx";  // far smaller than the header
  f.close();
  EXPECT_THROW(load_binary_edges(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bpart::graph
