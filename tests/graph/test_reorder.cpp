#include "graph/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"

namespace bpart::graph {
namespace {

Graph test_graph() {
  CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 19;
  return Graph::from_edges_symmetric(community_scale_free(cfg));
}

TEST(IsPermutation, Detects) {
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));  // duplicate
  EXPECT_FALSE(is_permutation({0, 3, 1}));  // out of range
  EXPECT_TRUE(is_permutation({}));
}

TEST(ApplyPermutation, IdentityIsNoop) {
  const Graph g = test_graph();
  std::vector<VertexId> id(g.num_vertices());
  std::iota(id.begin(), id.end(), VertexId{0});
  const Graph h = apply_permutation(g, id);
  for (VertexId v = 0; v < g.num_vertices(); v += 61)
    EXPECT_EQ(g.out_degree(v), h.out_degree(v));
}

TEST(ApplyPermutation, RelabelsEdges) {
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  const Graph g = Graph::from_edges(el);
  // perm: 0->2, 1->0, 2->1
  const Graph h = apply_permutation(g, {2, 0, 1});
  EXPECT_EQ(h.out_degree(2), 1u);  // old 0
  EXPECT_EQ(h.out_neighbors(2)[0], 0u);  // old 1
  EXPECT_EQ(h.out_neighbors(0)[0], 1u);  // old 1 -> old 2
}

TEST(ApplyPermutation, PreservesStructure) {
  const Graph g = test_graph();
  const Graph h = apply_permutation(g, random_order(g.num_vertices(), 5));
  EXPECT_EQ(h.num_edges(), g.num_edges());
  // Degree multiset invariant.
  auto dg = g.out_degrees();
  auto dh = h.out_degrees();
  std::sort(dg.begin(), dg.end());
  std::sort(dh.begin(), dh.end());
  EXPECT_EQ(dg, dh);
  // Component count invariant.
  EXPECT_EQ(count_components(connected_components(g)),
            count_components(connected_components(h)));
}

TEST(ApplyPermutation, ValidatesInput) {
  const Graph g = Graph::from_edges([] {
    EdgeList el;
    el.add(0, 1);
    return el;
  }());
  EXPECT_THROW(apply_permutation(g, {0}), CheckError);      // wrong size
  EXPECT_THROW(apply_permutation(g, {0, 0}), CheckError);   // not a perm
}

TEST(DegreeOrder, SortsHubsFirst) {
  const Graph g = test_graph();
  const auto perm = degree_order(g);
  ASSERT_TRUE(is_permutation(perm));
  const Graph h = apply_permutation(g, perm);
  for (VertexId v = 1; v < h.num_vertices(); ++v)
    ASSERT_GE(h.out_degree(v - 1), h.out_degree(v)) << "rank " << v;
}

TEST(BfsOrder, SourceIsFirstAndNeighborsEarly) {
  const Graph g = test_graph();
  const auto perm = bfs_order(g, 7);
  ASSERT_TRUE(is_permutation(perm));
  EXPECT_EQ(perm[7], 0u);
  // All of 7's neighbors must receive ranks below the frontier of the
  // second BFS level — conservatively, below 1 + deg(7) + 1.
  for (VertexId u : g.out_neighbors(7))
    EXPECT_LE(perm[u], g.out_degree(7) + 1);
}

TEST(BfsOrder, UnreachedVerticesGetTailRanks) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.set_num_vertices(4);
  const Graph g = Graph::from_edges(el);
  const auto perm = bfs_order(g, 0);
  ASSERT_TRUE(is_permutation(perm));
  EXPECT_LT(perm[1], 2u);
  EXPECT_GE(perm[2], 2u);
  EXPECT_GE(perm[3], 2u);
}

TEST(RandomOrder, IsSeededPermutation) {
  const auto a = random_order(1000, 3);
  const auto b = random_order(1000, 3);
  const auto c = random_order(1000, 4);
  EXPECT_TRUE(is_permutation(a));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

/// Exact triangle count via wedge checking on the undirected view — small
/// graphs only; the relabel-invariance oracle below.
std::uint64_t count_triangles_naive(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.out_neighbors(v)) {
      if (u == v) continue;
      adj[v].push_back(u);
      adj[u].push_back(v);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  std::uint64_t triangles = 0;
  for (VertexId v = 0; v < n; ++v)
    for (VertexId u : adj[v]) {
      if (u <= v) continue;
      for (VertexId w : adj[u]) {
        if (w <= u) continue;
        if (std::binary_search(adj[v].begin(), adj[v].end(), w)) ++triangles;
      }
    }
  return triangles;
}

TEST(ApplyPermutation, PreservesTriangles) {
  CommunityGraphConfig cfg;
  cfg.num_vertices = 512;
  cfg.avg_degree = 10;
  cfg.num_communities = 8;
  cfg.seed = 23;
  const Graph g = Graph::from_edges_symmetric(community_scale_free(cfg));
  const std::uint64_t want = count_triangles_naive(g);
  EXPECT_GT(want, 0u);
  for (const auto& perm :
       {degree_order(g), bfs_order(g, 0),
        random_order(g.num_vertices(), 5)}) {
    EXPECT_EQ(count_triangles_naive(apply_permutation(g, perm)), want);
  }
}

TEST(InvertPermutation, RoundTrips) {
  const auto perm = random_order(257, 11);
  const auto inv = invert_permutation(perm);
  ASSERT_TRUE(is_permutation(inv));
  for (VertexId v = 0; v < perm.size(); ++v) {
    EXPECT_EQ(inv[perm[v]], v);
    EXPECT_EQ(perm[inv[v]], v);
  }
  EXPECT_THROW(invert_permutation({0, 0}), CheckError);
  EXPECT_THROW(invert_permutation({1, 2}), CheckError);
}

TEST(SelectOrder, ModesMatchTheirGenerators) {
  const Graph g = test_graph();
  EXPECT_TRUE(select_order(g, ReorderMode::kNone, 0).empty());
  EXPECT_EQ(select_order(g, ReorderMode::kDegree, 0), degree_order(g));
  EXPECT_EQ(select_order(g, ReorderMode::kRandom, 9),
            random_order(g.num_vertices(), 9));
  // BFS seeds from the highest-out-degree hub (lowest id on ties).
  VertexId hub = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  const auto perm = select_order(g, ReorderMode::kBfs, 0);
  ASSERT_TRUE(is_permutation(perm));
  EXPECT_EQ(perm[hub], 0u);
}

}  // namespace
}  // namespace bpart::graph
