// Cross-module edge cases: tiny, empty and degenerate inputs flowing
// through the whole stack. These are the inputs a downstream user hits
// first when wiring the library into their own system.
#include <gtest/gtest.h>

#include "engine/components.hpp"
#include "engine/kcore.hpp"
#include "engine/pagerank.hpp"
#include "engine/triangles.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "walk/apps.hpp"
#include "walk/walk_engine.hpp"

namespace bpart {
namespace {

using graph::EdgeList;
using graph::Graph;

TEST(EdgeCases, EmptyGraphThroughEveryPartitioner) {
  const Graph g;
  for (const auto& algo : partition::all_algorithms()) {
    const auto p = partition::create(algo)->partition(g, 4);
    EXPECT_EQ(p.num_vertices(), 0u) << algo;
    const auto q = partition::evaluate(g, p);
    EXPECT_DOUBLE_EQ(q.edge_cut_ratio, 0.0) << algo;
  }
}

TEST(EdgeCases, SingleVertexGraph) {
  EdgeList el;
  el.set_num_vertices(1);
  const Graph g = Graph::from_edges(el);
  for (const auto& algo : partition::all_algorithms()) {
    const auto p = partition::create(algo)->partition(g, 2);
    EXPECT_TRUE(p.fully_assigned()) << algo;
  }
  // Apps still run.
  const auto parts = partition::create("chunk-v")->partition(g, 1);
  EXPECT_NEAR(engine::pagerank(g, parts).rank[0], 1.0, 1e-9);
  EXPECT_EQ(engine::connected_components(g, parts).num_components, 1u);
  EXPECT_EQ(engine::kcore(g, parts).max_core, 0u);
  EXPECT_EQ(engine::count_triangles(g, parts).total_triangles, 0u);
}

TEST(EdgeCases, SelfLoopOnlyGraph) {
  EdgeList el;
  el.add(0, 0);
  el.add(1, 1);
  const Graph g = Graph::from_edges(el);
  const auto parts = partition::create("hash")->partition(g, 2);
  // A self-loop is never a cut edge.
  EXPECT_DOUBLE_EQ(partition::edge_cut_ratio(g, parts), 0.0);
  // Walkers on self-loops spin until their length runs out.
  const auto report =
      walk::run_walks(g, parts, walk::SimpleRandomWalk(3), {});
  EXPECT_EQ(report.total_steps, 2u * 3u);
  EXPECT_EQ(report.message_walks, 0u);
}

TEST(EdgeCases, StarGraphAllPartitioners) {
  // One hub, 63 leaves: the most skewed input there is.
  EdgeList el;
  for (graph::VertexId v = 1; v < 64; ++v) el.add_undirected(0, v);
  const Graph g = Graph::from_edges(el);
  for (const auto& algo : partition::all_algorithms()) {
    const auto p = partition::create(algo)->partition(g, 4);
    EXPECT_TRUE(p.fully_assigned()) << algo;
    // Nobody can balance edges here (the hub owns half of them); the run
    // must still be valid and metrics finite.
    const auto q = partition::evaluate(g, p);
    EXPECT_GE(q.edge_summary.fairness, 0.25 - 1e-9) << algo;
  }
}

TEST(EdgeCases, MorePartsThanVertices) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  const Graph g = Graph::from_edges(el);
  for (const auto& algo : partition::all_algorithms()) {
    const auto p = partition::create(algo)->partition(g, 16);
    EXPECT_TRUE(p.fully_assigned()) << algo;
    EXPECT_EQ(p.num_parts(), 16u) << algo;
  }
}

TEST(EdgeCases, DisconnectedGraphApps) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(2, 3);
  el.set_num_vertices(6);  // 4, 5 isolated
  const Graph g = Graph::from_edges(el);
  const auto parts = partition::create("chunk-v")->partition(g, 2);
  EXPECT_EQ(engine::connected_components(g, parts).num_components, 4u);
  const auto pr = engine::pagerank(g, parts);
  double sum = 0;
  for (double r : pr.rank) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(EdgeCases, WalkEngineIterationCapStopsRunaways) {
  // PPR with a vanishing stop probability would walk for ~1e6 steps;
  // max_iterations must bound the run.
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 64;
  cfg.k = 2;
  const Graph g = Graph::from_edges(graph::watts_strogatz(cfg));
  const auto parts = partition::create("chunk-v")->partition(g, 2);
  walk::WalkConfig wcfg;
  wcfg.max_iterations = 5;
  wcfg.greedy_local = false;  // one step per iteration: cap == 5 steps each
  const auto report = walk::run_walks(
      g, parts, walk::PersonalizedPageRank(1e-9), wcfg);
  EXPECT_LE(report.run.iterations.size(), 5u);
  EXPECT_LE(report.total_steps, 5u * 64u);
}

TEST(EdgeCases, ComponentsIterationCap) {
  // A long path needs ~n rounds; the cap must cut it off cleanly.
  EdgeList el;
  for (graph::VertexId v = 0; v + 1 < 64; ++v) el.add_undirected(v, v + 1);
  const Graph g = Graph::from_edges(el);
  const auto parts = partition::create("chunk-v")->partition(g, 2);
  const auto res = engine::connected_components(g, parts, {}, 3);
  EXPECT_LE(res.run.iterations.size(), 3u);
  // Labels are only partially propagated — more than one label remains.
  EXPECT_GT(res.num_components, 1u);
}

TEST(EdgeCases, AnalysisOnDegenerateGraphs) {
  const auto empty_stats = graph::analyze(Graph{});
  EXPECT_EQ(empty_stats.num_vertices, 0u);
  EXPECT_TRUE(empty_stats.symmetric);

  EdgeList lone;
  lone.set_num_vertices(3);
  const auto iso_stats = graph::analyze(Graph::from_edges(lone));
  EXPECT_EQ(iso_stats.isolated_vertices, 3u);
  EXPECT_DOUBLE_EQ(iso_stats.avg_degree, 0.0);
}

}  // namespace
}  // namespace bpart
