// End-to-end integration: dataset -> partition -> distributed apps,
// asserting the paper's qualitative system-level claims hold in the
// simulator (the same claims the benches quantify).
#include <gtest/gtest.h>

#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "walk/apps.hpp"
#include "walk/walk_engine.hpp"

namespace bpart {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static const graph::Graph& shared_graph() {
    static const graph::Graph g = [] {
      graph::CommunityGraphConfig cfg;
      cfg.num_vertices = 8192;
      cfg.avg_degree = 16;
      cfg.num_communities = 48;
      cfg.mixing = 0.3;
      cfg.seed = 41;
      return graph::Graph::from_edges_symmetric(
          graph::community_scale_free(cfg));
    }();
    return g;
  }
};

TEST_F(PipelineTest, EveryPaperAlgorithmDrivesEveryApp) {
  const auto& g = shared_graph();
  for (const auto& algo : partition::paper_algorithms()) {
    const auto parts = partition::create(algo)->partition(g, 4);
    const auto walk_report =
        walk::run_walks(g, parts, walk::SimpleRandomWalk(4), {});
    EXPECT_GT(walk_report.total_steps, 0u) << algo;
    const auto pr = engine::pagerank(
        g, parts, {.damping = 0.85, .iterations = 3, .exec = {}});
    EXPECT_EQ(pr.run.iterations.size(), 3u) << algo;
  }
}

TEST_F(PipelineTest, BPartWaitsLessThanOneDimensionalSchemes) {
  // Fig. 13's claim: 2D balance slashes the waiting-time ratio for random
  // walks vs Chunk-V / Chunk-E / Fennel.
  const auto& g = shared_graph();
  walk::WalkConfig cfg;
  cfg.walks_per_vertex = 5;
  auto wait_ratio = [&](const std::string& algo) {
    const auto parts = partition::create(algo)->partition(g, 8);
    return walk::run_walks(g, parts, walk::SimpleRandomWalk(4), cfg)
        .run.wait_ratio();
  };
  const double bpart = wait_ratio("bpart");
  EXPECT_LT(bpart, wait_ratio("chunk-v"));
  EXPECT_LT(bpart, wait_ratio("chunk-e"));
  EXPECT_LT(bpart, wait_ratio("fennel"));
}

TEST_F(PipelineTest, BPartOutrunsHashOnIterationApps) {
  // Fig. 15's claim: against Hash (balanced but cut-heavy), BPart wins on
  // PR/CC because it moves far fewer messages.
  const auto& g = shared_graph();
  const auto bpart = partition::create("bpart")->partition(g, 8);
  const auto hash = partition::create("hash")->partition(g, 8);
  const auto pr_bpart = engine::pagerank(g, bpart);
  const auto pr_hash = engine::pagerank(g, hash);
  EXPECT_LT(pr_bpart.run.total_seconds(), pr_hash.run.total_seconds());
  EXPECT_LT(pr_bpart.run.total_messages(), pr_hash.run.total_messages());
}

TEST_F(PipelineTest, MessageWalksFollowEdgeCuts) {
  // Fig. 5's claim: message-walk traffic tracks the edge-cut ratio.
  const auto& g = shared_graph();
  double last_cut = -1;
  std::uint64_t last_messages = 0;
  // fennel < bpart < hash in cut ratio on this graph; traffic must agree.
  for (const auto& algo : {"fennel", "bpart", "hash"}) {
    const auto parts = partition::create(algo)->partition(g, 8);
    const double cut = partition::edge_cut_ratio(g, parts);
    walk::WalkConfig cfg;
    cfg.walks_per_vertex = 5;
    const auto report =
        walk::run_walks(g, parts, walk::SimpleRandomWalk(4), cfg);
    if (last_cut >= 0 && cut > last_cut) {
      EXPECT_GT(report.message_walks, last_messages) << algo;
    }
    last_cut = cut;
    last_messages = report.message_walks;
  }
}

TEST_F(PipelineTest, DatasetsBuildAndPartitionAtScale) {
  // Smoke the real dataset registry end to end (the benches' exact path).
  const auto g = graph::livejournal_like();
  const auto parts = partition::create("bpart")->partition(g, 8);
  const auto q = partition::evaluate(g, parts);
  EXPECT_LT(q.vertex_summary.bias, 0.15);
  EXPECT_LT(q.edge_summary.bias, 0.15);
  const auto cc = engine::connected_components(g, parts);
  EXPECT_GE(cc.num_components, 1u);
}

}  // namespace
}  // namespace bpart
