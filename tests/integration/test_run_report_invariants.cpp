// Cross-cutting RunReport invariants: whatever application runs on
// whatever partition, the cluster accounting must be internally
// consistent. Parameterized over (application, partitioner).
#include <gtest/gtest.h>

#include <tuple>

#include "engine/components.hpp"
#include "engine/kcore.hpp"
#include "engine/pagerank.hpp"
#include "engine/triangles.hpp"
#include "graph/generators.hpp"
#include "partition/registry.hpp"
#include "walk/apps.hpp"
#include "walk/walk_engine.hpp"

namespace bpart {
namespace {

const graph::Graph& shared_graph() {
  static const graph::Graph g = [] {
    graph::CommunityGraphConfig cfg;
    cfg.num_vertices = 4096;
    cfg.avg_degree = 12;
    cfg.num_communities = 32;
    cfg.seed = 61;
    return graph::Graph::from_edges_symmetric(
        graph::community_scale_free(cfg));
  }();
  return g;
}

cluster::RunReport run_app(const std::string& app,
                           const partition::Partition& parts) {
  const auto& g = shared_graph();
  if (app == "pagerank") return engine::pagerank(g, parts).run;
  if (app == "cc") return engine::connected_components(g, parts).run;
  if (app == "kcore") return engine::kcore(g, parts).run;
  if (app == "triangles") return engine::count_triangles(g, parts).run;
  return walk::run_walks(g, parts, *walk::create_walk_app(app), {}).run;
}

using Param = std::tuple<std::string, std::string>;
class RunReportInvariants : public ::testing::TestWithParam<Param> {};

TEST_P(RunReportInvariants, AccountingIsConsistent) {
  const auto& [app, algo] = GetParam();
  const auto parts = partition::create(algo)->partition(shared_graph(), 4);
  const cluster::RunReport run = run_app(app, parts);

  ASSERT_EQ(run.num_machines, 4u);
  ASSERT_FALSE(run.iterations.empty());

  double total_seconds = 0;
  std::uint64_t sent = 0, received = 0;
  for (const auto& iter : run.iterations) {
    ASSERT_EQ(iter.machines.size(), 4u);
    double slowest = 0;
    for (const auto& m : iter.machines) {
      EXPECT_GE(m.wait_seconds, -1e-12);
      EXPECT_GE(m.compute_seconds, 0.0);
      slowest = std::max(slowest, m.compute_seconds + m.comm_seconds);
      sent += m.messages_sent;
      received += m.messages_received;
    }
    // Iteration duration = slowest machine + barrier; every machine's
    // busy + wait time equals the slowest machine's busy time.
    EXPECT_GE(iter.duration_seconds, slowest);
    for (const auto& m : iter.machines)
      EXPECT_NEAR(m.compute_seconds + m.comm_seconds + m.wait_seconds,
                  slowest, 1e-9);
    total_seconds += iter.duration_seconds;
  }
  EXPECT_EQ(sent, received);  // conservation of messages
  EXPECT_NEAR(run.total_seconds(), total_seconds, 1e-9);
  EXPECT_GE(run.wait_ratio(), 0.0);
  EXPECT_LT(run.wait_ratio(), 1.0);
  EXPECT_GT(run.total_work(), 0u);
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::get<0>(info.param) + "_" + std::get<1>(info.param);
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

std::vector<Param> params() {
  std::vector<Param> out;
  const std::vector<std::string> apps = {"pagerank", "cc",       "kcore",
                                         "triangles", "ppr",     "rwj",
                                         "deepwalk", "node2vec"};
  for (const auto& app : apps)
    for (const std::string algo : {"chunk-v", "hash", "bpart"})
      out.emplace_back(app, algo);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AppsTimesPartitioners, RunReportInvariants,
                         ::testing::ValuesIn(params()), param_name);

}  // namespace
}  // namespace bpart
