#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "obs/json.hpp"

namespace bpart::obs {
namespace {

TEST(JsonWriter, ObjectWithMixedValues) {
  json::Writer w;
  w.begin_object()
      .kv("name", "bpart")
      .kv("count", std::int64_t{42})
      .kv("ratio", 0.5)
      .kv("ok", true)
      .key("none")
      .null()
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"bpart","count":42,"ratio":0.5,"ok":true,"none":null})");
}

TEST(JsonWriter, NestedArrays) {
  json::Writer w;
  w.begin_array()
      .value(1)
      .begin_array()
      .value(2)
      .value(3)
      .end_array()
      .begin_object()
      .kv("k", 4)
      .end_object()
      .end_array();
  EXPECT_EQ(w.str(), R"([1,[2,3],{"k":4}])");
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  json::Writer w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::nan(""))
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  json::Writer w;
  w.begin_object().kv("k\"1", "v\n2").end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"1\":\"v\\n2\"}");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  json::Writer w;
  w.begin_object()
      .kv("s", "hi")
      .kv("i", std::int64_t{-7})
      .kv("d", 2.25)
      .key("a")
      .begin_array()
      .value(true)
      .null()
      .end_array()
      .end_object();
  const json::Value v = json::parse(w.str());
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_EQ(v.at("i").as_int(), -7);
  EXPECT_DOUBLE_EQ(v.at("d").as_double(), 2.25);
  EXPECT_TRUE(v.at("a").at(0).as_bool());
  EXPECT_TRUE(v.at("a").at(1).is_null());
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, HandlesEscapesAndUnicode) {
  const json::Value v = json::parse(R"({"k":"line\nbreak Aé"})");
  EXPECT_EQ(v.at("k").as_string(), "line\nbreak A\xc3\xa9");
}

TEST(JsonParse, ScientificAndNegativeNumbers) {
  const json::Value v = json::parse("[1e3, -2.5e-2, 0]");
  EXPECT_DOUBLE_EQ(v.at(0).as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(v.at(1).as_double(), -0.025);
  EXPECT_EQ(v.at(2).as_uint(), 0u);
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)json::parse("'single'"), std::runtime_error);
  EXPECT_THROW((void)json::parse(""), std::runtime_error);
}

TEST(JsonValue, TypeMismatchThrowsWithMessage) {
  const json::Value v = json::parse(R"({"n":3})");
  EXPECT_THROW((void)v.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
  EXPECT_FALSE(v.contains("missing"));
  EXPECT_TRUE(v.contains("n"));
}

}  // namespace
}  // namespace bpart::obs
