#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace bpart::obs {
namespace {

TEST(Counter, SingleThreadAddAndReset) {
  Counter c("test.counter.single");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, AggregatesAcrossThreads) {
  Counter c("test.counter.mt");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Gauge, SetAndAddFromThreads) {
  Gauge g("test.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t)
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(0.5);
    });
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 1.5 + 4 * 1000 * 0.5);
}

TEST(LatencyHistogram, CountSumMaxAndBuckets) {
  LatencyHistogram h("test.latency");
  h.record_ns(0);
  h.record_ns(1);
  h.record_ns(1000);
  h.record_ns(1023);
  h.record_ns(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum_ns(), 0u + 1 + 1000 + 1023 + 1024);
  EXPECT_EQ(h.max_ns(), 1024u);

  const LogHistogram lh = h.to_log_histogram();
  EXPECT_EQ(lh.total(), 5u);
  // LogHistogram bucket i = [2^i, 2^(i+1)); bucket 0 additionally holds 0.
  EXPECT_EQ(lh.bucket_count(0), 2u);   // the 0 and the 1
  EXPECT_EQ(lh.bucket_count(9), 2u);   // 1000, 1023 in [512, 1024)
  EXPECT_EQ(lh.bucket_count(10), 1u);  // 1024 in [1024, 2048)
}

TEST(LatencyHistogram, RecordSecondsClampsNegative) {
  LatencyHistogram h("test.latency.neg");
  h.record_seconds(-1.0);
  h.record_seconds(1e-6);  // 1000 ns
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max_ns(), 1000u);
}

TEST(LatencyHistogram, ConcurrentRecordersAreConsistent) {
  LatencyHistogram h("test.latency.mt");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        h.record_ns((t + 1) * 100);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.max_ns(), kThreads * 100u);
  std::uint64_t expected_sum = 0;
  for (unsigned t = 0; t < kThreads; ++t)
    expected_sum += (t + 1) * 100ull * kPerThread;
  EXPECT_EQ(h.sum_ns(), expected_sum);
}

TEST(Registry, FindOrCreateReturnsSameHandle) {
  Counter& a = counter("test.registry.counter");
  Counter& b = counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = gauge("test.registry.gauge");
  Gauge& g2 = gauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  LatencyHistogram& l1 = latency("test.registry.latency");
  LatencyHistogram& l2 = latency("test.registry.latency");
  EXPECT_EQ(&l1, &l2);
}

TEST(Registry, ConcurrentLookupsOfSameName) {
  constexpr unsigned kThreads = 8;
  std::vector<Counter*> handles(kThreads);
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([&handles, t] {
      Counter& c = counter("test.registry.race");
      c.add();
      handles[t] = &c;
    });
  for (auto& t : threads) t.join();
  for (unsigned t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->value(), kThreads);
}

TEST(Snapshot, ContainsRegisteredMetricsWithQuantiles) {
  metrics_reset();
  counter("test.snapshot.counter").add(7);
  gauge("test.snapshot.gauge").set(2.5);
  LatencyHistogram& lat = latency("test.snapshot.latency");
  for (int i = 0; i < 100; ++i) lat.record_ns(1000);

  const MetricsSnapshot snap = metrics_snapshot();
  bool found_counter = false;
  for (const auto& c : snap.counters)
    if (c.name == "test.snapshot.counter") {
      found_counter = true;
      EXPECT_EQ(c.value, 7u);
    }
  EXPECT_TRUE(found_counter);

  bool found_gauge = false;
  for (const auto& g : snap.gauges)
    if (g.name == "test.snapshot.gauge") {
      found_gauge = true;
      EXPECT_DOUBLE_EQ(g.value, 2.5);
    }
  EXPECT_TRUE(found_gauge);

  bool found_latency = false;
  for (const auto& l : snap.latencies)
    if (l.name == "test.snapshot.latency") {
      found_latency = true;
      EXPECT_EQ(l.count, 100u);
      EXPECT_EQ(l.sum_ns, 100000u);
      // All samples fall in [512, 1024), so every quantile does too.
      EXPECT_GE(l.p50_ns, 512.0);
      EXPECT_LE(l.p50_ns, 1024.0);
      EXPECT_GE(l.p99_ns, l.p50_ns);
    }
  EXPECT_TRUE(found_latency);

  // Snapshot names arrive sorted for deterministic reports.
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST(Snapshot, ResetZeroesButKeepsHandles) {
  Counter& c = counter("test.reset.counter");
  c.add(5);
  metrics_reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // handle still valid after reset
  EXPECT_EQ(c.value(), 2u);
}

TEST(ScopedLatency, RecordsOneSampleOnScopeExit) {
  LatencyHistogram& lat = latency("test.scoped.latency");
  const std::uint64_t before = lat.count();
  { ScopedLatency sample(lat); }
  EXPECT_EQ(lat.count(), before + 1);
}

}  // namespace
}  // namespace bpart::obs
