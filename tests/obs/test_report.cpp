#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "cluster/bsp.hpp"
#include "obs/bench_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

namespace bpart::obs {
namespace {

cluster::RunReport sample_run_report() {
  cluster::RunReport r;
  r.num_machines = 2;
  for (int iter = 0; iter < 3; ++iter) {
    cluster::IterationReport it;
    it.duration_seconds = 0.5 + 0.1 * iter;
    for (int m = 0; m < 2; ++m) {
      cluster::MachineIterationStats s;
      s.work_items = 100 + 10 * m + iter;
      s.messages_sent = 7 * (m + 1);
      s.messages_received = 7 * (2 - m);
      s.bytes_sent = s.messages_sent * 16;
      s.bytes_received = s.messages_received * 16;
      s.compute_seconds = 0.25 + 0.05 * m;
      s.comm_seconds = 0.03;
      s.wait_seconds = 0.02 * (m + 1);
      it.machines.push_back(s);
    }
    r.iterations.push_back(std::move(it));
  }
  return r;
}

TEST(RunReportJson, RoundTripPreservesEveryField) {
  const cluster::RunReport orig = sample_run_report();
  const cluster::RunReport back =
      run_report_from_json(json::parse(run_report_json(orig)));

  ASSERT_EQ(back.num_machines, orig.num_machines);
  ASSERT_EQ(back.iterations.size(), orig.iterations.size());
  for (std::size_t i = 0; i < orig.iterations.size(); ++i) {
    const auto& a = orig.iterations[i];
    const auto& b = back.iterations[i];
    EXPECT_DOUBLE_EQ(b.duration_seconds, a.duration_seconds);
    ASSERT_EQ(b.machines.size(), a.machines.size());
    for (std::size_t m = 0; m < a.machines.size(); ++m) {
      EXPECT_EQ(b.machines[m].work_items, a.machines[m].work_items);
      EXPECT_EQ(b.machines[m].messages_sent, a.machines[m].messages_sent);
      EXPECT_EQ(b.machines[m].messages_received,
                a.machines[m].messages_received);
      EXPECT_EQ(b.machines[m].bytes_sent, a.machines[m].bytes_sent);
      EXPECT_EQ(b.machines[m].bytes_received, a.machines[m].bytes_received);
      EXPECT_DOUBLE_EQ(b.machines[m].compute_seconds,
                       a.machines[m].compute_seconds);
      EXPECT_DOUBLE_EQ(b.machines[m].comm_seconds, a.machines[m].comm_seconds);
      EXPECT_DOUBLE_EQ(b.machines[m].wait_seconds, a.machines[m].wait_seconds);
    }
  }
  // Derived metrics agree after the round trip.
  EXPECT_DOUBLE_EQ(back.total_seconds(), orig.total_seconds());
  EXPECT_DOUBLE_EQ(back.wait_ratio(), orig.wait_ratio());
  EXPECT_EQ(back.total_bytes_sent(), orig.total_bytes_sent());
}

TEST(RunReportJson, TotalsMatchRunReportMethods) {
  const cluster::RunReport r = sample_run_report();
  const json::Value v = json::parse(run_report_json(r));
  const json::Value& totals = v.at("totals");
  EXPECT_DOUBLE_EQ(totals.at("seconds").as_double(), r.total_seconds());
  EXPECT_DOUBLE_EQ(totals.at("wait_ratio").as_double(), r.wait_ratio());
  EXPECT_EQ(totals.at("bytes_sent").as_uint(), r.total_bytes_sent());
  EXPECT_EQ(totals.at("iterations").as_uint(), r.iterations.size());
}

TEST(RunReportJson, MalformedDocumentThrows) {
  EXPECT_THROW((void)run_report_from_json(json::parse(R"({"foo":1})")),
               std::runtime_error);
}

TEST(MetricsJson, SerializesCountersGaugesAndLatencies) {
  metrics_reset();
  counter("report.test.counter").add(11);
  gauge("report.test.gauge").set(-1.25);
  latency("report.test.latency").record_ns(700);  // bucket [512, 1024)

  const json::Value v = json::parse(metrics_json(metrics_snapshot()));
  EXPECT_EQ(v.at("counters").at("report.test.counter").as_uint(), 11u);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("report.test.gauge").as_double(), -1.25);

  const json::Value& lat = v.at("latencies").at("report.test.latency");
  EXPECT_EQ(lat.at("count").as_uint(), 1u);
  EXPECT_EQ(lat.at("sum_ns").as_uint(), 700u);
  EXPECT_EQ(lat.at("max_ns").as_uint(), 700u);
  bool found_bucket = false;
  for (const auto& pair : lat.at("buckets").as_array()) {
    if (pair.at(0).as_uint() == 512u) {
      EXPECT_EQ(pair.at(1).as_uint(), 1u);
      found_bucket = true;
    }
  }
  EXPECT_TRUE(found_bucket);
}

TEST(BenchReport, ProducesSchemaValidDocument) {
  metrics_reset();
  BenchReport r;
  r.set_name("unit");
  Table t({"algo", "seconds"});
  t.row().cell("bpart").cell(1.5);
  t.row().cell("hash").cell(0.5);
  r.set_table(t);
  r.add_info("title", "unit test");
  r.add_info("dataset_scale", 0.25);
  r.add_run("bpart/pagerank/measured", sample_run_report());

  const json::Value v = json::parse(r.to_json());
  EXPECT_EQ(v.at("schema").as_string(), BenchReport::kSchema);
  EXPECT_EQ(v.at("name").as_string(), "unit");
  EXPECT_GT(v.at("created_unix").as_uint(), 0u);
  EXPECT_EQ(v.at("info").at("title").as_string(), "unit test");
  EXPECT_DOUBLE_EQ(v.at("info").at("dataset_scale").as_double(), 0.25);

  const json::Value& table = v.at("table");
  ASSERT_EQ(table.at("headers").size(), 2u);
  EXPECT_EQ(table.at("headers").at(0).as_string(), "algo");
  ASSERT_EQ(table.at("rows").size(), 2u);
  EXPECT_EQ(table.at("rows").at(0).at(0).as_string(), "bpart");
  EXPECT_DOUBLE_EQ(table.at("rows").at(0).at(1).as_double(), 1.5);

  ASSERT_EQ(v.at("runs").size(), 1u);
  EXPECT_EQ(v.at("runs").at(0).at("label").as_string(),
            "bpart/pagerank/measured");
  const cluster::RunReport back =
      run_report_from_json(v.at("runs").at(0).at("report"));
  EXPECT_EQ(back.num_machines, 2u);

  EXPECT_TRUE(v.at("metrics").is_object());
}

TEST(BenchReport, InfoKeysAreReplacedNotDuplicated) {
  BenchReport r;
  r.add_info("title", "first");
  r.add_info("title", "second");
  const json::Value v = json::parse(r.to_json());
  EXPECT_EQ(v.at("info").at("title").as_string(), "second");
  // The JSON parser's object map would hide duplicates; check the raw text.
  const std::string raw = r.to_json();
  EXPECT_EQ(raw.find("\"title\""), raw.rfind("\"title\""));
}

TEST(BenchReport, WriteCreatesNamedFile) {
  BenchReport r;
  r.set_name("write_test");
  const std::string dir = testing::TempDir();
  const std::string path = r.write(dir);
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("BENCH_write_test.json"), std::string::npos);
  const json::Value v = json::parse_file(path);
  EXPECT_EQ(v.at("schema").as_string(), BenchReport::kSchema);
  EXPECT_EQ(v.at("table").at("headers").size(), 0u);  // no table attached
}

TEST(BenchReport, ClearResetsToEmptyState) {
  BenchReport r;
  r.set_name("cleared");
  r.add_run("x", sample_run_report());
  r.clear();
  EXPECT_EQ(r.name(), "unnamed");
  const json::Value v = json::parse(r.to_json());
  EXPECT_FALSE(v.contains("runs"));
}

}  // namespace
}  // namespace bpart::obs
