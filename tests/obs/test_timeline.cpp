#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "cluster/bsp.hpp"
#include "obs/attrib.hpp"
#include "obs/json.hpp"
#include "obs/timeline.hpp"

namespace bpart::obs {
namespace {

std::string temp_timeline_path(const std::string& name) {
  return testing::TempDir() + "bpart_" + name + ".json";
}

/// A 2-superstep, 3-machine report whose charged time reconciles exactly:
/// machines 0+1 share worker 0, machine 2 is worker 1; each superstep's
/// wall time equals the gating worker's busy + its wait.
cluster::RunReport make_report() {
  cluster::RunReport report;
  report.num_machines = 3;
  auto step = [&](double c0, double c1, double c2, double w01, double w2) {
    cluster::IterationReport it;
    it.machines.resize(3);
    it.machines[0].compute_seconds = c0;
    it.machines[0].comm_seconds = 0.01;
    it.machines[0].wait_seconds = w01;
    it.machines[0].work_items = 10;
    it.machines[0].messages_sent = 2;
    it.machines[0].bytes_sent = 16;
    it.machines[1].compute_seconds = c1;
    it.machines[1].comm_seconds = 0.01;
    it.machines[1].wait_seconds = w01;
    it.machines[2].compute_seconds = c2;
    it.machines[2].comm_seconds = 0.02;
    it.machines[2].wait_seconds = w2;
    // Gating worker busy + its wait telescopes to the wall time.
    const double busy0 = c0 + c1 + 0.02;
    const double busy1 = c2 + 0.02;
    it.duration_seconds =
        busy0 > busy1 ? busy0 + w01 : busy1 + w2;
    report.iterations.push_back(std::move(it));
  };
  step(0.40, 0.20, 0.30, 0.005, 0.305);  // worker 0 gates (0.62 vs 0.32)
  step(0.10, 0.10, 0.50, 0.31, 0.005);   // worker 1 gates (0.52 vs 0.22)
  return report;
}

const std::vector<std::uint32_t> kGating01{0, 2};  // argmax compute machines
const std::vector<std::uint32_t> kMachineWorker{0, 0, 1};

TEST(Timeline, OffByDefaultEveryEntryPointIsANoOp) {
  timeline_stop();  // force off, whatever earlier tests did
  EXPECT_FALSE(timeline_enabled());
  EXPECT_EQ(timeline_begin_run(4), 0u);
  EXPECT_EQ(timeline_last_run(), 0u);
  timeline_record_exec(0, 100, 3, 1.0, {0.1, 0.2});
  timeline_event("test/off", 0.5, {{"k", 1.0}});
  {
    ScopedTimelineLabel label("test/off-label");
  }
  timeline_commit_run(1, make_report(), kGating01, {}, kMachineWorker);
  const TimelineData data = timeline_snapshot();
  EXPECT_TRUE(data.runs.empty());
  EXPECT_TRUE(data.workers.empty());
  EXPECT_TRUE(data.events.empty());
  EXPECT_EQ(timeline_flush(), "");
}

TEST(Timeline, CommitRunRecordsCompleteRows) {
  timeline_stop();
  const std::string path = temp_timeline_path("timeline_rows");
  timeline_start(path);

  std::uint64_t run = 0;
  {
    ScopedTimelineLabel label("test/complete");
    run = timeline_begin_run(3);
  }
  ASSERT_NE(run, 0u);
  std::vector<std::vector<std::uint64_t>> channels(
      2, std::vector<std::uint64_t>(9, 8));
  timeline_commit_run(run, make_report(), kGating01, std::move(channels),
                      kMachineWorker);
  EXPECT_EQ(timeline_last_run(), run);

  const TimelineData data = timeline_snapshot();
  ASSERT_EQ(data.runs.size(), 1u);
  const TimelineRun& r = data.runs[0];
  EXPECT_EQ(r.label, "test/complete");
  EXPECT_EQ(r.machines, 3u);
  ASSERT_EQ(r.supersteps.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    const TimelineSuperstep& step = r.supersteps[s];
    EXPECT_EQ(step.index, s);
    EXPECT_EQ(step.gating_machine, kGating01[s]);
    ASSERT_EQ(step.machines.size(), 3u);
    EXPECT_EQ(step.channel_bytes.size(), 9u);
    for (std::size_t m = 0; m < 3; ++m) {
      EXPECT_EQ(step.machines[m].machine, m);
      EXPECT_EQ(step.machines[m].worker, kMachineWorker[m]);
    }
  }
  EXPECT_EQ(r.supersteps[0].machines[0].work, 10u);
  EXPECT_EQ(r.supersteps[0].machines[0].bytes_sent, 16u);

  // The artifact round-trips as bpart-timeline/v1 JSON.
  ASSERT_EQ(timeline_stop(), path);
  const json::Value doc = json::parse_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), "bpart-timeline/v1");
  ASSERT_EQ(doc.at("runs").size(), 1u);
  EXPECT_EQ(doc.at("runs").at(0).at("supersteps").size(), 2u);
  EXPECT_EQ(doc.at("runs")
                .at(0)
                .at("supersteps")
                .at(0)
                .at("machines")
                .size(),
            3u);
}

TEST(Timeline, AttributionReconcilesWithRunReport) {
  timeline_stop();
  timeline_start(temp_timeline_path("timeline_attrib"));
  const cluster::RunReport report = make_report();
  const std::uint64_t run = timeline_begin_run(3);
  timeline_commit_run(run, report, kGating01, {}, kMachineWorker);

  const TimelineData data = timeline_snapshot();
  ASSERT_EQ(data.runs.size(), 1u);
  const RunAttribution a = attribute_run(data.runs[0]);

  // Charged compute + comm + wait covers the measured wall time within the
  // acceptance gate's 5%, and the totals match the RunReport's own sums.
  EXPECT_NEAR(a.charged_coverage(), 1.0, 0.05);
  EXPECT_NEAR(a.total_seconds, report.total_seconds(), 1e-12);
  ASSERT_EQ(a.supersteps.size(), 2u);
  EXPECT_EQ(a.supersteps[0].gating_worker, 0u);
  EXPECT_EQ(a.supersteps[1].gating_worker, 1u);
  EXPECT_EQ(a.supersteps[0].gating_machine, 0u);
  EXPECT_EQ(a.supersteps[1].gating_machine, 2u);
  ASSERT_EQ(a.gate_counts.size(), 3u);
  EXPECT_EQ(a.gate_counts[0], 1u);
  EXPECT_EQ(a.gate_counts[2], 1u);
  // Step 0: worker 1 idles 0.305s of which the 0.30s busy gap is
  // skew-explained; the rest is residual.
  EXPECT_NEAR(a.supersteps[0].skew_wait, 0.30, 1e-9);
  EXPECT_NEAR(a.supersteps[0].residual_wait, 0.005, 1e-9);
  EXPECT_GT(a.supersteps[0].compute_ratio, 1.0);

  const std::string table = attribution_table(a);
  EXPECT_NE(table.find("who gated how often"), std::string::npos);
  timeline_stop();
}

TEST(Timeline, PhasesAndAnnotationsAttachToCommittedRuns) {
  timeline_stop();
  timeline_start(temp_timeline_path("timeline_phases"));
  const std::uint64_t run = timeline_begin_run(3);
  timeline_commit_run(run, make_report(), kGating01, {}, kMachineWorker);
  timeline_set_phases(run, {"boot", "A", "B"});  // extra entry ignored
  timeline_annotate_run(run, "mirror_to_master_bytes", 128.0);
  timeline_annotate_run(run, "mirror_to_master_bytes", 256.0);  // replaces

  const TimelineData data = timeline_snapshot();
  ASSERT_EQ(data.runs.size(), 1u);
  ASSERT_EQ(data.runs[0].supersteps.size(), 2u);
  EXPECT_EQ(data.runs[0].supersteps[0].phase, "boot");
  EXPECT_EQ(data.runs[0].supersteps[1].phase, "A");
  ASSERT_EQ(data.runs[0].annotations.size(), 1u);
  EXPECT_EQ(data.runs[0].annotations[0].second, 256.0);
  timeline_stop();
}

TEST(Timeline, ExecReservoirStaysBounded) {
  timeline_stop();
  timeline_start(temp_timeline_path("timeline_exec"));
  std::vector<double> batch(100, 0.001);
  timeline_record_exec(7, 100, 5, 0.1, batch);
  timeline_record_exec(7, 100, 2, 0.1, batch);

  const TimelineData data = timeline_snapshot();
  ASSERT_EQ(data.workers.size(), 1u);
  const TimelineWorkerStats& w = data.workers[0];
  EXPECT_EQ(w.worker, 7u);
  EXPECT_EQ(w.chunks, 200u);
  EXPECT_EQ(w.steals, 7u);
  EXPECT_NEAR(w.busy_seconds, 0.2, 1e-12);
  EXPECT_LE(w.sample_seconds.size(), 64u);
  EXPECT_FALSE(w.sample_seconds.empty());
  timeline_stop();
}

TEST(Timeline, ConcurrentRecordingIsSafe) {
  timeline_stop();
  timeline_start(temp_timeline_path("timeline_tsan"));
  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 4;
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &committed] {
      ScopedTimelineLabel label("test/concurrent-" + std::to_string(t));
      for (int i = 0; i < kRunsPerThread; ++i) {
        const std::uint64_t run = timeline_begin_run(3);
        timeline_commit_run(run, make_report(), kGating01, {},
                            kMachineWorker);
        timeline_record_exec(static_cast<std::uint32_t>(t), 4, 1, 0.001,
                             {0.0005});
        timeline_event("test/evt", 0.001, {{"thread", double(t)}});
        committed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  const TimelineData data = timeline_snapshot();
  EXPECT_EQ(committed.load(), kThreads * kRunsPerThread);
  EXPECT_EQ(data.runs.size(),
            static_cast<std::size_t>(kThreads * kRunsPerThread));
  EXPECT_EQ(data.workers.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(data.events.size(),
            static_cast<std::size_t>(kThreads * kRunsPerThread));
  for (const TimelineRun& r : data.runs) {
    EXPECT_EQ(r.supersteps.size(), 2u);
    EXPECT_NE(r.label.find("test/concurrent-"), std::string::npos);
  }
  timeline_stop();
}

}  // namespace
}  // namespace bpart::obs
