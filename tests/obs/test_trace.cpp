#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace bpart::obs {
namespace {

std::string temp_trace_path(const std::string& name) {
  return testing::TempDir() + "bpart_" + name + ".json";
}

/// Collect the "X" (complete) events of a trace document.
std::vector<json::Value> complete_events(const json::Value& doc) {
  std::vector<json::Value> out;
  const auto& events = doc.at("traceEvents").as_array();
  for (const auto& e : events)
    if (e.at("ph").as_string() == "X") out.push_back(e);
  return out;
}

TEST(Trace, DisabledSpansAreNoOps) {
  trace_stop();  // ensure off, whatever earlier tests did
  {
    BPART_SPAN("test/disabled");
    BPART_SPAN("test/disabled_args", "n", 3.0);
  }
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_flush(), "");
}

TEST(Trace, ExportsCompleteEventsWithCategoryAndArgs) {
  const std::string path = temp_trace_path("trace_basic");
  trace_start(path);
  {
    BPART_SPAN("testphase/outer", "vertices", 128.0);
    BPART_SPAN("testphase/inner", "k", 8.0, "layer", 2.0);
  }
  ASSERT_EQ(trace_stop(), path);

  const json::Value doc = json::parse_file(path);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto events = complete_events(doc);
  ASSERT_GE(events.size(), 2u);

  std::map<std::string, const json::Value*> by_name;
  for (const auto& e : events) by_name[e.at("name").as_string()] = &e;
  ASSERT_TRUE(by_name.count("testphase/outer"));
  ASSERT_TRUE(by_name.count("testphase/inner"));

  const json::Value& outer = *by_name["testphase/outer"];
  EXPECT_EQ(outer.at("cat").as_string(), "testphase");
  EXPECT_DOUBLE_EQ(outer.at("args").at("vertices").as_double(), 128.0);

  const json::Value& inner = *by_name["testphase/inner"];
  EXPECT_DOUBLE_EQ(inner.at("args").at("k").as_double(), 8.0);
  EXPECT_DOUBLE_EQ(inner.at("args").at("layer").as_double(), 2.0);
}

TEST(Trace, NestedSpansRecordDepthAndContainment) {
  const std::string path = temp_trace_path("trace_nesting");
  trace_start(path);
  {
    BPART_SPAN("nest/a");
    {
      BPART_SPAN("nest/b");
      { BPART_SPAN("nest/c"); }
    }
  }
  ASSERT_EQ(trace_stop(), path);

  const json::Value doc = json::parse_file(path);
  std::map<std::string, double> depth;
  std::map<std::string, std::pair<double, double>> window;  // ts, ts+dur
  for (const auto& e : complete_events(doc)) {
    const std::string& name = e.at("name").as_string();
    if (name.rfind("nest/", 0) != 0) continue;
    depth[name] = e.at("args").at("depth").as_double();
    window[name] = {e.at("ts").as_double(),
                    e.at("ts").as_double() + e.at("dur").as_double()};
  }
  ASSERT_EQ(depth.size(), 3u);
  EXPECT_EQ(depth["nest/a"], 0.0);
  EXPECT_EQ(depth["nest/b"], 1.0);
  EXPECT_EQ(depth["nest/c"], 2.0);
  // Child windows sit inside the parent's.
  EXPECT_GE(window["nest/b"].first, window["nest/a"].first);
  EXPECT_LE(window["nest/b"].second, window["nest/a"].second);
  EXPECT_GE(window["nest/c"].first, window["nest/b"].first);
  EXPECT_LE(window["nest/c"].second, window["nest/b"].second);
}

TEST(Trace, ThreadsGetDistinctTrackIds) {
  const std::string path = temp_trace_path("trace_threads");
  trace_start(path);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t)
    threads.emplace_back([] { BPART_SPAN("threads/worker"); });
  for (auto& t : threads) t.join();
  ASSERT_EQ(trace_stop(), path);

  const json::Value doc = json::parse_file(path);
  std::set<double> tids;
  for (const auto& e : complete_events(doc))
    if (e.at("name").as_string() == "threads/worker")
      tids.insert(e.at("tid").as_double());
  EXPECT_EQ(tids.size(), kThreads);
}

TEST(Trace, NameWithoutSlashFallsBackToMiscCategory) {
  const std::string path = temp_trace_path("trace_misc");
  trace_start(path);
  { BPART_SPAN("bare_name"); }
  ASSERT_EQ(trace_stop(), path);

  const json::Value doc = json::parse_file(path);
  bool found = false;
  for (const auto& e : complete_events(doc))
    if (e.at("name").as_string() == "bare_name") {
      found = true;
      EXPECT_EQ(e.at("cat").as_string(), "misc");
    }
  EXPECT_TRUE(found);
}

TEST(Trace, StopClearsBuffersForNextSession) {
  const std::string path1 = temp_trace_path("trace_session1");
  trace_start(path1);
  { BPART_SPAN("session1/only"); }
  trace_stop();

  const std::string path2 = temp_trace_path("trace_session2");
  trace_start(path2);
  { BPART_SPAN("session2/only"); }
  ASSERT_EQ(trace_stop(), path2);

  const json::Value doc = json::parse_file(path2);
  for (const auto& e : complete_events(doc))
    EXPECT_NE(e.at("name").as_string(), "session1/only");
}

TEST(Trace, ExportIncludesProcessMetadataAndDropCount) {
  const std::string path = temp_trace_path("trace_meta");
  trace_start(path);
  { BPART_SPAN("meta/span"); }
  ASSERT_EQ(trace_stop(), path);

  const json::Value doc = json::parse_file(path);
  EXPECT_EQ(doc.at("otherData").at("dropped_events").as_uint(), 0u);
  bool meta = false;
  for (const auto& e : doc.at("traceEvents").as_array())
    if (e.at("ph").as_string() == "M" &&
        e.at("name").as_string() == "process_name")
      meta = true;
  EXPECT_TRUE(meta);
}

}  // namespace
}  // namespace bpart::obs
