#include "partition/bisection.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"
#include "util/timer.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;
using testing::social_graph;

TEST(Bisection, FullyAssignedPowerOfTwo) {
  const Graph g = social_graph();
  const Partition p = RecursiveBisection().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
  for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
}

TEST(Bisection, HandlesArbitraryPartCounts) {
  // The published GD baseline only does powers of two; ours generalizes by
  // splitting with ceil/floor target fractions.
  const Graph g = social_graph();
  for (PartId k : {3u, 5u, 7u}) {
    const Partition p = RecursiveBisection().partition(g, k);
    EXPECT_TRUE(p.fully_assigned());
    const auto vc = p.vertex_counts();
    EXPECT_EQ(std::accumulate(vc.begin(), vc.end(), std::uint64_t{0}),
              g.num_vertices());
    for (auto c : vc) EXPECT_GT(c, 0u) << "k=" << k;
  }
}

TEST(Bisection, TwoDimensionalBalance) {
  const Graph g = social_graph();
  const QualityReport q =
      evaluate(g, RecursiveBisection().partition(g, 8));
  EXPECT_LT(q.vertex_summary.bias, 0.2);
  EXPECT_LT(q.edge_summary.bias, 0.2);
}

TEST(Bisection, CutsFewerEdgesThanHash) {
  const Graph g = social_graph();
  const double cut =
      edge_cut_ratio(g, RecursiveBisection().partition(g, 8));
  const double hash_cut =
      edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(cut, 0.85 * hash_cut);
}

TEST(Bisection, Deterministic) {
  const Graph g = social_graph();
  const Partition a = RecursiveBisection().partition(g, 4);
  const Partition b = RecursiveBisection().partition(g, 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 83)
    EXPECT_EQ(a[v], b[v]);
}

TEST(Bisection, SinglePartTrivial) {
  const Graph g = social_graph();
  const Partition p = RecursiveBisection().partition(g, 1);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(Bisection, EmptyGraph) {
  const Partition p = RecursiveBisection().partition(Graph{}, 4);
  EXPECT_EQ(p.num_vertices(), 0u);
}

TEST(Bisection, SlowerThanBPartAsPaperClaims) {
  // The related-work trade-off: recursive bisection does log2(k) full
  // passes, so it costs more than BPart's two phases. (Timing check with a
  // generous margin to stay robust on shared machines.)
  const Graph g = social_graph();
  Timer t1;
  (void)RecursiveBisection().partition(g, 16);
  const double bisect_seconds = t1.seconds();
  Timer t2;
  (void)create("bpart")->partition(g, 16);
  const double bpart_seconds = t2.seconds();
  EXPECT_GT(bisect_seconds, 0.8 * bpart_seconds);
}

}  // namespace
}  // namespace bpart::partition
