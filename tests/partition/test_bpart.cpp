#include "partition/bpart.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "test_graphs.hpp"
#include "partition/fennel.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;

using testing::social_graph;

TEST(BPartAlgo, FullyAssignedWithExactParts) {
  const Graph g = social_graph();
  const Partition p = BPart().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
  for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
}

TEST(BPartAlgo, Deterministic) {
  const Graph g = social_graph();
  const Partition a = BPart().partition(g, 8);
  const Partition b = BPart().partition(g, 8);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 173)
    EXPECT_EQ(a[v], b[v]);
}

TEST(BPartAlgo, TwoDimensionalBalance) {
  // The headline claim (Fig. 10): BOTH biases below ~0.1.
  const Graph g = social_graph();
  const QualityReport r = evaluate(g, BPart().partition(g, 8));
  EXPECT_LT(r.vertex_summary.bias, 0.15);
  EXPECT_LT(r.edge_summary.bias, 0.15);
  EXPECT_GT(r.vertex_summary.fairness, 0.98);
  EXPECT_GT(r.edge_summary.fairness, 0.98);
}

TEST(BPartAlgo, BothDimensionsBeatOneDimensionalBaselines) {
  const Graph g = social_graph();
  const QualityReport bp = evaluate(g, BPart().partition(g, 8));
  const QualityReport fe = evaluate(g, Fennel().partition(g, 8));
  // Fennel balances vertices but not edges; BPart must beat it on edges
  // without giving up much on vertices.
  EXPECT_LT(bp.edge_summary.bias, fe.edge_summary.bias / 2);
}

TEST(BPartAlgo, CutsFewerEdgesThanHash) {
  // Table 3: BPart ~0.5-0.73 vs Hash ~0.875.
  const Graph g = social_graph();
  const double bpart_cut = edge_cut_ratio(g, BPart().partition(g, 8));
  const double hash_cut = edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(bpart_cut, hash_cut - 0.1);
}

TEST(BPartAlgo, TraceShowsMultiLayerBehaviour) {
  const Graph g = social_graph();
  BPartTrace trace;
  const Partition p = BPart().partition_traced(g, 8, &trace);
  ASSERT_GE(trace.layers.size(), 1u);
  EXPECT_EQ(trace.layers[0].pieces, 16u);  // 2 x N over-split
  EXPECT_EQ(trace.layers[0].combine_rounds, 1u);
  // Layer outputs must account for all 8 parts.
  unsigned accepted = 0;
  for (const auto& l : trace.layers) accepted += l.accepted;
  EXPECT_EQ(trace.layers.back().remaining, 8u - accepted);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(BPartAlgo, LaterLayersDoubleOversplit) {
  // Force multiple layers with an unreachable threshold; use the paper's
  // rank pairing so the Fig. 9 round structure (sort + pair extremes,
  // doubling rounds per layer) is what is being verified.
  BPartConfig cfg;
  cfg.pairing = PairingRule::kRank;
  cfg.balance_threshold = 1e-9;
  cfg.max_layers = 3;
  const Graph g = social_graph();
  BPartTrace trace;
  (void)BPart(cfg).partition_traced(g, 4, &trace);
  ASSERT_EQ(trace.layers.size(), 3u);
  EXPECT_EQ(trace.layers[0].pieces, 8u);    // 2 x 4
  EXPECT_EQ(trace.layers[1].pieces, 16u);   // 4 x 4
  EXPECT_EQ(trace.layers[1].combine_rounds, 2u);
  EXPECT_EQ(trace.layers[2].pieces, 32u);   // 8 x 4
  EXPECT_EQ(trace.layers[2].remaining, 0u); // last layer accepts everything
}

TEST(BPartAlgo, SinglePartTrivial) {
  const Graph g = social_graph();
  const Partition p = BPart().partition(g, 1);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 1u);
}

TEST(BPartAlgo, TinyGraphMoreVerticesThanParts) {
  graph::EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  const Graph g = Graph::from_edges(el);
  const Partition p = BPart().partition(g, 2);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(BPartAlgo, DegeneratePartsExceedVertices) {
  graph::EdgeList el;
  el.add_undirected(0, 1);
  const Graph g = Graph::from_edges(el);
  const Partition p = BPart().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());  // empty parts are legal here
}

TEST(BPartAlgo, EmptyGraph) {
  const Graph g;
  const Partition p = BPart().partition(g, 4);
  EXPECT_EQ(p.num_vertices(), 0u);
}

TEST(BPartAlgo, ConfigValidation) {
  BPartConfig bad;
  bad.oversplit_factor = 3;  // not a power of two
  EXPECT_THROW(BPart{bad}, CheckError);
  bad = BPartConfig{};
  bad.balance_threshold = 0.0;
  EXPECT_THROW(BPart{bad}, CheckError);
  bad = BPartConfig{};
  bad.max_layers = 0;
  EXPECT_THROW(BPart{bad}, CheckError);
}

TEST(BPartAlgo, InverseProportionalityAfterPhaseOne) {
  // §3.2's key mechanism: with c=1/2, pieces with fewer vertices must have
  // more edges. Check the correlation of (V_i, E_i) over pieces is negative.
  const Graph g = social_graph();
  std::vector<graph::VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), graph::VertexId{0});
  StreamConfig cfg;
  cfg.balance_weight_c = 0.5;
  const Partition pieces = greedy_stream_partition(g, all, 16, cfg);
  const auto vc = pieces.vertex_counts();
  const auto ec = pieces.edge_counts(g);
  double mean_v = 0, mean_e = 0;
  for (std::size_t i = 0; i < vc.size(); ++i) {
    mean_v += static_cast<double>(vc[i]);
    mean_e += static_cast<double>(ec[i]);
  }
  mean_v /= static_cast<double>(vc.size());
  mean_e /= static_cast<double>(ec.size());
  double cov = 0;
  for (std::size_t i = 0; i < vc.size(); ++i)
    cov += (static_cast<double>(vc[i]) - mean_v) *
           (static_cast<double>(ec[i]) - mean_e);
  EXPECT_LT(cov, 0.0);
}

TEST(BPartAlgo, ScalesToManyParts) {
  // Fig. 11: balance holds as the part count grows.
  const Graph g = graph::twitter_like();
  const QualityReport r = evaluate(g, BPart().partition(g, 64));
  EXPECT_GT(r.vertex_summary.fairness, 0.97);
  EXPECT_GT(r.edge_summary.fairness, 0.97);
}

}  // namespace
}  // namespace bpart::partition
