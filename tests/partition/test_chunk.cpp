#include "partition/chunk.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph star_graph(graph::VertexId leaves) {
  // Vertex 0 is a hub with `leaves` out-edges — the extreme power-law case.
  EdgeList el;
  for (graph::VertexId v = 1; v <= leaves; ++v) el.add(0, v);
  return Graph::from_edges(el);
}

TEST(ChunkV, BalancesVerticesExactly) {
  const Graph g = star_graph(99);  // 100 vertices
  const Partition p = ChunkV().partition(g, 4);
  const auto counts = p.vertex_counts();
  for (auto c : counts) EXPECT_EQ(c, 25u);
}

TEST(ChunkV, AssignsContiguousRanges) {
  const Graph g = star_graph(7);
  const Partition p = ChunkV().partition(g, 2);
  for (graph::VertexId v = 1; v < 8; ++v) EXPECT_GE(p[v], p[v - 1]);
}

TEST(ChunkV, UnevenDivisionSpreadsRemainder) {
  const Graph g = star_graph(9);  // 10 vertices into 3 parts
  const Partition p = ChunkV().partition(g, 3);
  const auto counts = p.vertex_counts();
  std::uint64_t total = 0;
  for (auto c : counts) {
    EXPECT_GE(c, 3u);
    EXPECT_LE(c, 4u);
    total += c;
  }
  EXPECT_EQ(total, 10u);
}

TEST(ChunkV, EdgesHighlySkewedOnStar) {
  // The hub part gets ALL edges — the paper's Limitation #1 in miniature.
  const Graph g = star_graph(99);
  const Partition p = ChunkV().partition(g, 4);
  const auto ec = p.edge_counts(g);
  EXPECT_EQ(ec[0], 99u);
  EXPECT_EQ(ec[1], 0u);
}

TEST(ChunkE, BalancesEdges) {
  const Graph g = star_graph(99);
  const Partition p = ChunkE().partition(g, 4);
  const auto ec = p.edge_counts(g);
  // Star: all edges belong to vertex 0, so part 0 takes them all — but on a
  // graph with spread degrees the split is even; tested below with R-MAT.
  EXPECT_EQ(ec[0], 99u);
}

TEST(ChunkE, EvenEdgeSplitOnRealisticGraph) {
  graph::RmatConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 16;
  const Graph g = Graph::from_edges(graph::rmat(cfg));
  const Partition p = ChunkE().partition(g, 8);
  const auto ec = p.edge_counts(g);
  // Every part within a few percent of the ideal 1/8 share: bias small.
  EXPECT_LT(stats::bias(stats::to_doubles(ec)), 0.05);
}

TEST(ChunkE, VerticesSkewedOnPowerLawGraph) {
  graph::RmatConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 16;
  const Graph g = Graph::from_edges(graph::rmat(cfg));
  const Partition p = ChunkE().partition(g, 8);
  // Paper Fig. 3/6: edge-balanced chunking leaves vertices imbalanced.
  EXPECT_GT(stats::bias(stats::to_doubles(p.vertex_counts())), 0.2);
}

TEST(ChunkE, ContiguousRanges) {
  graph::RmatConfig cfg;
  cfg.scale = 8;
  const Graph g = Graph::from_edges(graph::rmat(cfg));
  const Partition p = ChunkE().partition(g, 4);
  for (graph::VertexId v = 1; v < g.num_vertices(); ++v)
    EXPECT_GE(p[v], p[v - 1]);
}

TEST(ChunkBoth, FullyAssignedAndExactPartCount) {
  graph::RmatConfig cfg;
  cfg.scale = 10;
  const Graph g = Graph::from_edges(graph::rmat(cfg));
  for (const auto* algo : {"v", "e"}) {
    const Partition p = algo[0] == 'v' ? ChunkV().partition(g, 7)
                                       : ChunkE().partition(g, 7);
    EXPECT_TRUE(p.fully_assigned());
    EXPECT_EQ(p.num_parts(), 7u);
    // Every part must be non-empty on a graph with n >> k.
    for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
  }
}

TEST(ChunkBoth, SinglePartTrivial) {
  const Graph g = star_graph(10);
  EXPECT_TRUE(ChunkV().partition(g, 1).fully_assigned());
  EXPECT_TRUE(ChunkE().partition(g, 1).fully_assigned());
}

TEST(ChunkBoth, LowCutOnContiguousCommunityGraph) {
  // Watts–Strogatz ring: neighbors have adjacent ids, so chunking cuts
  // almost nothing — the redeeming quality of chunk partitions.
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 1000;
  cfg.k = 4;
  cfg.beta = 0.0;
  const Graph g = Graph::from_edges(graph::watts_strogatz(cfg));
  EXPECT_LT(edge_cut_ratio(g, ChunkV().partition(g, 4)), 0.05);
}

}  // namespace
}  // namespace bpart::partition
