#include "partition/fennel.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "test_graphs.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;

using testing::social_graph;

TEST(Fennel, FullyAssignedWithExactParts) {
  const Graph g = social_graph();
  const Partition p = Fennel().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
  for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
}

TEST(Fennel, Deterministic) {
  const Graph g = social_graph();
  const Partition a = Fennel().partition(g, 4);
  const Partition b = Fennel().partition(g, 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 211)
    EXPECT_EQ(a[v], b[v]);
}

TEST(Fennel, BalancesVertices) {
  const Graph g = social_graph();
  const Partition p = Fennel().partition(g, 8);
  EXPECT_LT(stats::bias(stats::to_doubles(p.vertex_counts())), 0.25);
}

TEST(Fennel, CutsFarFewerEdgesThanHash) {
  // Paper Fig. 5(a): Fennel ~30% cut vs Hash ~88% at k=8.
  const Graph g = social_graph();
  const double fennel_cut = edge_cut_ratio(g, Fennel().partition(g, 8));
  const double hash_cut =
      edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(fennel_cut, 0.6 * hash_cut);
}

TEST(Fennel, EdgesRemainImbalanced) {
  // Paper Limitation #1: Fennel balances vertices, not edges.
  const Graph g = social_graph();
  const Partition p = Fennel().partition(g, 8);
  const double edge_bias = stats::bias(stats::to_doubles(p.edge_counts(g)));
  const double vertex_bias =
      stats::bias(stats::to_doubles(p.vertex_counts()));
  EXPECT_GT(edge_bias, 2 * vertex_bias);
}

TEST(Fennel, CapacityCapPreventsCollapse) {
  // On a clique stream, the overlap term always favors the first part; the
  // capacity cap must still force a spread.
  graph::EdgeList el;
  for (graph::VertexId v = 0; v < 64; ++v)
    for (graph::VertexId u = 0; u < 64; ++u)
      if (v != u) el.add(v, u);
  const Graph g = Graph::from_edges(el);
  const Partition p = Fennel().partition(g, 4);
  for (auto c : p.vertex_counts()) {
    EXPECT_GT(c, 0u);
    EXPECT_LE(c, 20u);  // 1.2 slack * 16 ideal = 19.2
  }
}

TEST(Fennel, RespectsExplicitAlpha) {
  // A huge alpha makes the penalty dominate -> nearly perfect vertex
  // balance (it degenerates toward least-loaded assignment).
  const Graph g = social_graph();
  StreamConfig cfg;
  cfg.alpha = 1e9;
  const Partition p = Fennel(cfg).partition(g, 8);
  EXPECT_LT(stats::bias(stats::to_doubles(p.vertex_counts())), 0.01);
}

TEST(Fennel, SinglePart) {
  const Graph g = social_graph();
  const Partition p = Fennel().partition(g, 1);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_DOUBLE_EQ(edge_cut_ratio(g, p), 0.0);
}

TEST(GreedyStream, SubsetLeavesOthersUnassigned) {
  const Graph g = social_graph();
  std::vector<graph::VertexId> subset;
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 2)
    subset.push_back(v);
  const Partition p = greedy_stream_partition(g, subset, 4, StreamConfig{});
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 2 == 0) EXPECT_NE(p[v], kUnassigned);
    else EXPECT_EQ(p[v], kUnassigned);
  }
}

TEST(GreedyStream, RejectsDuplicateSubsetEntries) {
  const Graph g = social_graph();
  const std::vector<graph::VertexId> dup{1, 1};
  EXPECT_THROW(greedy_stream_partition(g, dup, 2, StreamConfig{}),
               CheckError);
}

TEST(GreedyStream, EmptySubsetIsNoop) {
  const Graph g = social_graph();
  const Partition p = greedy_stream_partition(g, {}, 4, StreamConfig{});
  EXPECT_FALSE(p.fully_assigned());
}

TEST(GreedyStream, WeightedIndicatorShiftsBalance) {
  // c=0 balances edges: edge bias should drop well below the c=1 result.
  const Graph g = social_graph();
  std::vector<graph::VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), graph::VertexId{0});
  StreamConfig vcfg;  // c = 1
  StreamConfig ecfg;
  ecfg.balance_weight_c = 0.0;
  const auto pv = greedy_stream_partition(g, all, 8, vcfg);
  const auto pe = greedy_stream_partition(g, all, 8, ecfg);
  const double edge_bias_v = stats::bias(stats::to_doubles(pv.edge_counts(g)));
  const double edge_bias_e = stats::bias(stats::to_doubles(pe.edge_counts(g)));
  EXPECT_LT(edge_bias_e, edge_bias_v);
}

}  // namespace
}  // namespace bpart::partition
