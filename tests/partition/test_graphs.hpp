// Shared test fixtures: small synthetic graphs with the structure the
// partitioners are designed for (power-law degrees + communities).
#pragma once

#include "graph/csr.hpp"
#include "graph/generators.hpp"

namespace bpart::partition::testing {

/// A small social-network-like graph: scale-free degrees, planted
/// communities, crawl-order ids. ~16K vertices / ~330K directed edges.
inline graph::Graph social_graph() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 1 << 14;
  cfg.avg_degree = 20.0;
  cfg.degree_exponent = 2.0;
  cfg.num_communities = 64;
  cfg.mixing = 0.3;
  cfg.id_noise = 0.4;
  cfg.seed = 7;
  return graph::Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

/// Scale-free but community-free (R-MAT): exercises the degree-skew code
/// paths without the community structure.
inline graph::Graph scale_free_graph() {
  graph::RmatConfig cfg;
  cfg.scale = 13;
  cfg.edge_factor = 16;
  return graph::Graph::from_edges_symmetric(graph::rmat(cfg));
}

}  // namespace bpart::partition::testing
