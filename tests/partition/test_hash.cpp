#include "partition/hash_partitioner.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;

Graph test_graph() {
  graph::RmatConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 16;
  return Graph::from_edges(graph::rmat(cfg));
}

TEST(Hash, FullyAssigned) {
  const Partition p = HashPartitioner().partition(test_graph(), 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
}

TEST(Hash, DeterministicForSeed) {
  const Graph g = test_graph();
  const Partition a = HashPartitioner(5).partition(g, 4);
  const Partition b = HashPartitioner(5).partition(g, 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 101)
    EXPECT_EQ(a[v], b[v]);
}

TEST(Hash, SeedChangesAssignment) {
  const Graph g = test_graph();
  const Partition a = HashPartitioner(1).partition(g, 4);
  const Partition b = HashPartitioner(2).partition(g, 4);
  std::size_t diff = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    if (a[v] != b[v]) ++diff;
  EXPECT_GT(diff, g.num_vertices() / 2);
}

TEST(Hash, BalancesBothDimensions) {
  // The paper's observation: hash balances vertices AND edges...
  const Graph g = test_graph();
  const QualityReport r = evaluate(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(r.vertex_summary.bias, 0.10);
  EXPECT_LT(r.edge_summary.bias, 0.25);  // looser: edge mass is heavy-tailed
  EXPECT_GT(r.vertex_summary.fairness, 0.99);
  EXPECT_GT(r.edge_summary.fairness, 0.95);
}

TEST(Hash, CutsAlmostEverything) {
  // ...but cuts ~ (k-1)/k of the edges (paper: 87.5% at k=8).
  const Graph g = test_graph();
  const double cut = edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_NEAR(cut, 7.0 / 8.0, 0.02);
}

TEST(Hash, CutScalesWithPartCount) {
  const Graph g = test_graph();
  const double cut4 = edge_cut_ratio(g, HashPartitioner().partition(g, 4));
  const double cut16 = edge_cut_ratio(g, HashPartitioner().partition(g, 16));
  EXPECT_NEAR(cut4, 3.0 / 4.0, 0.02);
  EXPECT_NEAR(cut16, 15.0 / 16.0, 0.02);
}

TEST(Hash, SinglePartCutsNothing) {
  const Graph g = test_graph();
  EXPECT_DOUBLE_EQ(edge_cut_ratio(g, HashPartitioner().partition(g, 1)), 0.0);
}

}  // namespace
}  // namespace bpart::partition
