#include "partition/io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"

namespace bpart::partition {
namespace {

class PartitionIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs sibling tests of this fixture in
    // parallel processes, and a shared directory makes TearDown of one
    // race the writes of another.
    dir_ = std::filesystem::temp_directory_path() /
           ("bpart_partition_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(PartitionIoTest, RoundTripFullAssignment) {
  const auto g = testing::social_graph();
  const Partition p = create("bpart")->partition(g, 8);
  save_partition(p, path("p.txt"));
  const Partition loaded = load_partition(path("p.txt"));
  ASSERT_EQ(loaded.num_vertices(), p.num_vertices());
  ASSERT_EQ(loaded.num_parts(), p.num_parts());
  for (graph::VertexId v = 0; v < p.num_vertices(); ++v)
    ASSERT_EQ(loaded[v], p[v]);
}

TEST_F(PartitionIoTest, RoundTripPreservesUnassigned) {
  Partition p(5, 3);
  p.assign(1, 2);
  p.assign(4, 0);
  save_partition(p, path("partial.txt"));
  const Partition loaded = load_partition(path("partial.txt"));
  EXPECT_EQ(loaded[0], kUnassigned);
  EXPECT_EQ(loaded[1], 2u);
  EXPECT_EQ(loaded[4], 0u);
}

TEST_F(PartitionIoTest, HeaderCarriesSizes) {
  const Partition p(100, 7);  // fully unassigned
  save_partition(p, path("empty.txt"));
  const Partition loaded = load_partition(path("empty.txt"));
  EXPECT_EQ(loaded.num_vertices(), 100u);
  EXPECT_EQ(loaded.num_parts(), 7u);
}

TEST_F(PartitionIoTest, RejectsMissingHeader) {
  std::ofstream f(path("bad.txt"));
  f << "0 1\n";
  f.close();
  EXPECT_THROW(load_partition(path("bad.txt")), std::runtime_error);
}

TEST_F(PartitionIoTest, RejectsOutOfRangeValues) {
  std::ofstream f(path("range.txt"));
  f << "# bpart partition: 4 vertices, 2 parts\n0 5\n";
  f.close();
  EXPECT_THROW(load_partition(path("range.txt")), std::runtime_error);
}

TEST_F(PartitionIoTest, RejectsMalformedLineWithLineNumber) {
  std::ofstream f(path("mal.txt"));
  f << "# bpart partition: 4 vertices, 2 parts\n0 1\nbroken\n";
  f.close();
  try {
    load_partition(path("mal.txt"));
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":3"), std::string::npos);
  }
}

TEST_F(PartitionIoTest, ToleratesCrlfAndComments) {
  std::ofstream f(path("crlf.txt"), std::ios::binary);
  f << "# bpart partition: 3 vertices, 2 parts\r\n# note\r\n1 1\r\n";
  f.close();
  const Partition loaded = load_partition(path("crlf.txt"));
  EXPECT_EQ(loaded[1], 1u);
}

TEST_F(PartitionIoTest, MissingFileThrows) {
  EXPECT_THROW(load_partition(path("nope.txt")), std::runtime_error);
}

}  // namespace
}  // namespace bpart::partition
