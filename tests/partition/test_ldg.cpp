#include "partition/ldg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "test_graphs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;
using testing::social_graph;

TEST(Ldg, FullyAssignedWithExactParts) {
  const Graph g = social_graph();
  const Partition p = Ldg().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
  for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
}

TEST(Ldg, StrictCapacityBoundsVertices) {
  const Graph g = social_graph();
  const Partition p = Ldg(1.0).partition(g, 8);
  const auto counts = p.vertex_counts();
  const auto cap = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(g.num_vertices()) / 8.0));
  for (auto c : counts) EXPECT_LE(c, cap + 1);
}

TEST(Ldg, Deterministic) {
  const Graph g = social_graph();
  const Partition a = Ldg().partition(g, 4);
  const Partition b = Ldg().partition(g, 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 97)
    EXPECT_EQ(a[v], b[v]);
}

TEST(Ldg, CutsFewerEdgesThanHash) {
  const Graph g = social_graph();
  const double ldg_cut = edge_cut_ratio(g, Ldg().partition(g, 8));
  const double hash_cut =
      edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(ldg_cut, 0.85 * hash_cut);
}

TEST(Ldg, EdgesRemainImbalanced) {
  // LDG, like Fennel, balances vertices only.
  const Graph g = social_graph();
  const Partition p = Ldg().partition(g, 8);
  const double edge_bias = stats::bias(stats::to_doubles(p.edge_counts(g)));
  const double vertex_bias =
      stats::bias(stats::to_doubles(p.vertex_counts()));
  EXPECT_LT(vertex_bias, 0.1);
  EXPECT_GT(edge_bias, 0.5);
}

TEST(Ldg, SinglePart) {
  const Graph g = social_graph();
  const Partition p = Ldg().partition(g, 1);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(Ldg, RejectsSubUnitSlack) {
  const Graph g = social_graph();
  EXPECT_THROW(Ldg(0.5).partition(g, 2), CheckError);
}

TEST(Ldg, EmptyGraph) {
  const Partition p = Ldg().partition(Graph{}, 4);
  EXPECT_EQ(p.num_vertices(), 0u);
}

}  // namespace
}  // namespace bpart::partition
