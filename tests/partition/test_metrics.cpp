#include "partition/metrics.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace bpart::partition {
namespace {

using graph::EdgeList;
using graph::Graph;

// Square 0-1-2-3-0 (undirected, 8 directed edges).
Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

Partition split_square_adjacent() {
  // {0,1} vs {2,3}: cut edges are 1-2 and 3-0 in both directions = 4.
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  return p;
}

TEST(EdgeCut, CountsCrossPartEdges) {
  EXPECT_EQ(edge_cut_count(square(), split_square_adjacent()), 4u);
  EXPECT_DOUBLE_EQ(edge_cut_ratio(square(), split_square_adjacent()), 0.5);
}

TEST(EdgeCut, OppositeCornersCutEverything) {
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(2, 0);
  p.assign(1, 1);
  p.assign(3, 1);
  EXPECT_DOUBLE_EQ(edge_cut_ratio(square(), p), 1.0);
}

TEST(EdgeCut, SinglePartCutsNothing) {
  Partition p(4, 1);
  for (graph::VertexId v = 0; v < 4; ++v) p.assign(v, 0);
  EXPECT_DOUBLE_EQ(edge_cut_ratio(square(), p), 0.0);
}

TEST(EdgeCut, UnassignedEndpointsCountAsCut) {
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);  // 2, 3 unassigned
  EXPECT_EQ(edge_cut_count(square(), p), 6u);  // all edges touching 2 or 3
}

TEST(EdgeCut, EmptyGraphHasZeroRatio) {
  const Graph g = Graph::from_edges(EdgeList{});
  const Partition p(0, 2);
  EXPECT_DOUBLE_EQ(edge_cut_ratio(g, p), 0.0);
}

TEST(CutMatrix, DiagonalHoldsInternalEdges) {
  const auto m = cut_matrix(square(), split_square_adjacent());
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0][0], 2u);  // 0<->1 both directions
  EXPECT_EQ(m[1][1], 2u);  // 2<->3
  EXPECT_EQ(m[0][1], 2u);  // 1->2 and 0->3
  EXPECT_EQ(m[1][0], 2u);
}

TEST(CutMatrix, TotalsMatchEdgeCount) {
  const Graph g = square();
  const auto m = cut_matrix(g, split_square_adjacent());
  std::uint64_t total = 0;
  for (const auto& row : m)
    for (std::uint64_t c : row) total += c;
  EXPECT_EQ(total, g.num_edges());
}

TEST(MinPairwiseConnectivity, SymmetricPairCount) {
  EXPECT_EQ(min_pairwise_connectivity(square(), split_square_adjacent()), 4u);
}

TEST(MinPairwiseConnectivity, ZeroWhenPartsDisconnected) {
  // Two disjoint edges, one per part plus an empty 3rd part pairing.
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(2, 3);
  const Graph g = Graph::from_edges(el);
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  EXPECT_EQ(min_pairwise_connectivity(g, p), 0u);
}

TEST(MinPairwiseConnectivity, SinglePartIsZero) {
  Partition p(4, 1);
  for (graph::VertexId v = 0; v < 4; ++v) p.assign(v, 0);
  EXPECT_EQ(min_pairwise_connectivity(square(), p), 0u);
}

TEST(Evaluate, AggregatesAllMetrics) {
  const QualityReport r = evaluate(square(), split_square_adjacent());
  ASSERT_EQ(r.vertex_counts.size(), 2u);
  EXPECT_EQ(r.vertex_counts[0], 2u);
  EXPECT_EQ(r.edge_counts[0], 4u);
  EXPECT_DOUBLE_EQ(r.vertex_summary.bias, 0.0);
  EXPECT_DOUBLE_EQ(r.edge_summary.fairness, 1.0);
  EXPECT_DOUBLE_EQ(r.edge_cut_ratio, 0.5);
}

TEST(Evaluate, DescribeMentionsKeyNumbers) {
  const QualityReport r = evaluate(square(), split_square_adjacent());
  const std::string s = describe(r);
  EXPECT_NE(s.find("parts=2"), std::string::npos);
  EXPECT_NE(s.find("cut_ratio=0.5"), std::string::npos);
}

}  // namespace
}  // namespace bpart::partition
