#include "partition/multilevel.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "test_graphs.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;

using testing::social_graph;

TEST(Multilevel, FullyAssignedWithExactParts) {
  const Graph g = social_graph();
  const Partition p = Multilevel().partition(g, 8);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), 8u);
  for (auto c : p.vertex_counts()) EXPECT_GT(c, 0u);
}

TEST(Multilevel, Deterministic) {
  const Graph g = social_graph();
  const Partition a = Multilevel().partition(g, 4);
  const Partition b = Multilevel().partition(g, 4);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 211)
    EXPECT_EQ(a[v], b[v]);
}

TEST(Multilevel, VertexBalanceWithinEpsilon) {
  // §4.2: Mt-KaHIP's vertex bias is ~0.03 — tight vertex balance.
  const Graph g = social_graph();
  MultilevelConfig cfg;
  cfg.epsilon = 0.03;
  const Partition p = Multilevel(cfg).partition(g, 8);
  EXPECT_LT(stats::bias(stats::to_doubles(p.vertex_counts())), 0.10);
}

TEST(Multilevel, EdgesRemainImbalanced) {
  // §4.2's point: even offline multilevel partitioners leave the edge
  // dimension skewed on power-law graphs.
  const Graph g = social_graph();
  const Partition p = Multilevel().partition(g, 8);
  const double edge_bias = stats::bias(stats::to_doubles(p.edge_counts(g)));
  const double vertex_bias =
      stats::bias(stats::to_doubles(p.vertex_counts()));
  EXPECT_GT(edge_bias, 3 * vertex_bias);
}

TEST(Multilevel, CutsFarFewerEdgesThanHash) {
  // A multilevel partitioner's whole point is cut quality.
  const Graph g = social_graph();
  const double ml_cut = edge_cut_ratio(g, Multilevel().partition(g, 8));
  const double hash_cut =
      edge_cut_ratio(g, HashPartitioner().partition(g, 8));
  EXPECT_LT(ml_cut, 0.7 * hash_cut);
}

TEST(Multilevel, CommunityGraphIsNearlyUncut) {
  // Ring lattice: an ideal input where refinement should find a near-
  // minimal cut.
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 2048;
  cfg.k = 4;
  cfg.beta = 0.01;
  const Graph g = Graph::from_edges(graph::watts_strogatz(cfg));
  EXPECT_LT(edge_cut_ratio(g, Multilevel().partition(g, 4)), 0.2);
}

TEST(Multilevel, SinglePart) {
  const Graph g = social_graph();
  const Partition p = Multilevel().partition(g, 1);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(Multilevel, TinyGraph) {
  graph::EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  const Graph g = Graph::from_edges(el);
  const Partition p = Multilevel().partition(g, 2);
  EXPECT_TRUE(p.fully_assigned());
}

TEST(Multilevel, EmptyGraph) {
  const Partition p = Multilevel().partition(Graph{}, 4);
  EXPECT_EQ(p.num_vertices(), 0u);
}

}  // namespace
}  // namespace bpart::partition
