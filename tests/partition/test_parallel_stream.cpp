// Determinism + parity suite for the parallel buffered streaming pass
// (DESIGN.md §9). The contract under test:
//   * the buffered result is a pure function of (graph, subset, k, config) —
//     identical at 1, 2 and 8 worker threads;
//   * quality parity with the sequential pass for every registered
//     partitioner that routes through greedy_stream_partition: balance
//     within each partitioner's documented thresholds, edge cut within 5%;
//   * prioritized restreaming only improves the cut and never breaks
//     assignment or balance invariants.
// This suite runs under TSan in CI (the 8-thread cases exercise the
// snapshot/score/merge/commit protocol with real concurrency).
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "obs/metrics.hpp"
#include "partition/bpart.hpp"
#include "partition/fennel.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;
using testing::social_graph;

/// Scoped environment override (restores the previous value on exit).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

std::vector<graph::VertexId> all_vertices(const Graph& g) {
  std::vector<graph::VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), graph::VertexId{0});
  return order;
}

StreamConfig buffered_cfg(std::uint32_t batch, unsigned threads,
                          unsigned refine = StreamConfig::kRefineAuto) {
  StreamConfig cfg;
  cfg.batch_size = batch;
  cfg.threads = threads;
  cfg.refine_passes = refine;
  return cfg;
}

TEST(ParallelStream, IdenticalAcrossThreadCounts) {
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  const Partition p1 =
      greedy_stream_partition(g, all, 8, buffered_cfg(512, 1));
  const Partition p2 =
      greedy_stream_partition(g, all, 8, buffered_cfg(512, 2));
  const Partition p8 =
      greedy_stream_partition(g, all, 8, buffered_cfg(512, 8));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(p1[v], p2[v]) << "vertex " << v;
    ASSERT_EQ(p1[v], p8[v]) << "vertex " << v;
  }
}

TEST(ParallelStream, RefinedResultAlsoIdenticalAcrossThreadCounts) {
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  const Partition p1 =
      greedy_stream_partition(g, all, 8, buffered_cfg(1024, 1, 2));
  const Partition p8 =
      greedy_stream_partition(g, all, 8, buffered_cfg(1024, 8, 2));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(p1[v], p8[v]) << "vertex " << v;
}

TEST(ParallelStream, SingleBatchFallsBackToSequential) {
  // A batch at least as large as the subset keeps exact scoring: the
  // buffered pass must not degrade small pieces (BPart's late layers).
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  const Partition seq = greedy_stream_partition(g, all, 8, StreamConfig{});
  const Partition one_batch = greedy_stream_partition(
      g, all, 8, buffered_cfg(g.num_vertices(), 8));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(seq[v], one_batch[v]) << "vertex " << v;
}

TEST(ParallelStream, BufferedQualityParityWithSequential) {
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  const Partition seq = greedy_stream_partition(g, all, 8, StreamConfig{});
  const Partition buf =
      greedy_stream_partition(g, all, 8, buffered_cfg(1024, 8));
  EXPECT_TRUE(buf.fully_assigned());

  const double seq_cut = edge_cut_ratio(g, seq);
  const double buf_cut = edge_cut_ratio(g, buf);
  EXPECT_LE(buf_cut, seq_cut * 1.05);

  // Fennel-style c=1 balance: same box the sequential pass is held to.
  EXPECT_LT(stats::bias(stats::to_doubles(buf.vertex_counts())), 0.25);
}

TEST(ParallelStream, RefinementRecoversBufferedCut) {
  // refine=0 explicitly disables the auto restream: the raw buffered cut is
  // what one restream pass has to claw back (DESIGN.md §9 measurements).
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  const Partition raw =
      greedy_stream_partition(g, all, 8, buffered_cfg(1024, 4, 0));
  const Partition refined =
      greedy_stream_partition(g, all, 8, buffered_cfg(1024, 4, 2));
  EXPECT_TRUE(refined.fully_assigned());
  EXPECT_LE(edge_cut_ratio(g, refined), edge_cut_ratio(g, raw) + 1e-9);
  EXPECT_LT(stats::bias(stats::to_doubles(refined.vertex_counts())), 0.25);
}

TEST(ParallelStream, RefinementImprovesSequentialCutToo) {
  const Graph g = social_graph();
  const auto all = all_vertices(g);
  StreamConfig cfg;  // sequential
  const Partition plain = greedy_stream_partition(g, all, 8, cfg);
  cfg.refine_passes = 1;
  const Partition refined = greedy_stream_partition(g, all, 8, cfg);
  EXPECT_TRUE(refined.fully_assigned());
  EXPECT_LE(edge_cut_ratio(g, refined), edge_cut_ratio(g, plain) + 1e-9);
}

TEST(ParallelStream, ScratchReuseLeavesNoResidue) {
  // Two passes sharing one StreamScratch over different subsets must match
  // fresh-scratch runs exactly — any stale membership bit would leak the
  // first subset into the second pass's neighbor counting.
  const Graph g = social_graph();
  std::vector<graph::VertexId> evens;
  std::vector<graph::VertexId> odds;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    (v % 2 == 0 ? evens : odds).push_back(v);

  StreamScratch shared;
  StreamConfig cfg;
  cfg.scratch = &shared;
  const Partition ea = greedy_stream_partition(g, evens, 4, cfg);
  const Partition oa = greedy_stream_partition(g, odds, 4, cfg);

  const Partition eb = greedy_stream_partition(g, evens, 4, StreamConfig{});
  const Partition ob = greedy_stream_partition(g, odds, 4, StreamConfig{});
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(ea[v], eb[v]) << "vertex " << v;
    ASSERT_EQ(oa[v], ob[v]) << "vertex " << v;
  }
}

TEST(ParallelStream, ScratchSurvivesDuplicateSubsetThrow) {
  const Graph g = social_graph();
  StreamScratch shared;
  StreamConfig cfg;
  cfg.scratch = &shared;
  const std::vector<graph::VertexId> dup{1, 2, 1};
  EXPECT_THROW(greedy_stream_partition(g, dup, 2, cfg), CheckError);
  // The guard must have cleared the marks set before the throw.
  const auto all = all_vertices(g);
  const Partition after = greedy_stream_partition(g, all, 4, cfg);
  const Partition fresh = greedy_stream_partition(g, all, 4, StreamConfig{});
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(after[v], fresh[v]) << "vertex " << v;
}

TEST(ParallelStream, EnvKnobRoutesEveryStreamingPartitioner) {
  // $BPART_STREAM_BATCH must reach the streaming pass of every registered
  // partitioner built on it — fennel, bpart and bisect — without touching
  // their construction, and quality must stay at parity: vertex/edge
  // balance within each partitioner's documented box, edge cut within 5%
  // of the sequential run.
  const Graph g = social_graph();
  struct Expectation {
    const char* algo;
    double vertex_bias_box;
    double edge_bias_box;
  };
  // Boxes mirror each partitioner's own test suite: fennel balances
  // vertices only (test_fennel), bpart holds both biases under ~0.15
  // (test_bpart, Fig. 10), bisect is the multi-level splitter with a 5%
  // per-level band (looser after log2(k) levels).
  const std::vector<Expectation> expectations = {
      {"fennel", 0.25, 10.0},
      {"bpart", 0.15, 0.15},
      {"bisect", 0.30, 0.30},
  };
  for (const Expectation& e : expectations) {
    SCOPED_TRACE(e.algo);
    const Partition seq = create(e.algo)->partition(g, 8);

    obs::Counter& batches = obs::counter("partition.stream_batches");
    const std::uint64_t batches_before = batches.value();
    EnvGuard env("BPART_STREAM_BATCH", "1024");
    const Partition buf = create(e.algo)->partition(g, 8);
    EXPECT_GT(batches.value(), batches_before)
        << "buffered pass did not engage";

    EXPECT_TRUE(buf.fully_assigned());
    EXPECT_EQ(buf.num_parts(), 8u);
    const QualityReport q = evaluate(g, buf);
    EXPECT_LT(q.vertex_summary.bias, e.vertex_bias_box);
    EXPECT_LT(q.edge_summary.bias, e.edge_bias_box);
    EXPECT_LE(q.edge_cut_ratio, edge_cut_ratio(g, seq) * 1.05 + 0.005);
  }
}

TEST(ParallelStream, EnvKnobIsDeterministicAcrossThreadCounts) {
  // The env-routed buffered pass must also be thread-count independent:
  // same partition under BPART_THREADS=1 and =8.
  const Graph g = social_graph();
  EnvGuard batch("BPART_STREAM_BATCH", "512");
  Partition p1(0, 1);
  Partition p8(0, 1);
  {
    EnvGuard threads("BPART_THREADS", "1");
    p1 = create("bpart")->partition(g, 8);
  }
  {
    EnvGuard threads("BPART_THREADS", "8");
    p8 = create("bpart")->partition(g, 8);
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(p1[v], p8[v]) << "vertex " << v;
}

TEST(ParallelStream, SubsetBufferedPassLeavesOthersUnassigned) {
  const Graph g = social_graph();
  std::vector<graph::VertexId> subset;
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 2)
    subset.push_back(v);
  const Partition p =
      greedy_stream_partition(g, subset, 4, buffered_cfg(512, 4, 1));
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v % 2 == 0)
      EXPECT_NE(p[v], kUnassigned);
    else
      EXPECT_EQ(p[v], kUnassigned);
  }
}

TEST(ParallelStream, CapacityCapHoldsUnderBuffering) {
  // A clique stream maximizes same-batch herding: every vertex's snapshot
  // score favors the same part, so the exact-state commit fallback is what
  // keeps the cap honest.
  graph::EdgeList el;
  for (graph::VertexId v = 0; v < 256; ++v)
    for (graph::VertexId u = 0; u < 256; ++u)
      if (v != u) el.add(v, u);
  const Graph g = Graph::from_edges(el);
  const auto all = all_vertices(g);
  const Partition p = greedy_stream_partition(g, all, 4, buffered_cfg(64, 4));
  for (auto c : p.vertex_counts()) {
    EXPECT_GT(c, 0u);
    EXPECT_LE(c, 77u);  // 1.2 slack * 64 ideal = 76.8
  }
}

}  // namespace
}  // namespace bpart::partition
