#include "partition/partition.hpp"

#include <gtest/gtest.h>

#include "graph/csr.hpp"
#include "util/check.hpp"

namespace bpart::partition {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph path_graph(graph::VertexId n) {
  EdgeList el;
  for (graph::VertexId v = 0; v + 1 < n; ++v) el.add(v, v + 1);
  el.set_num_vertices(n);
  return Graph::from_edges(el);
}

TEST(Partition, StartsUnassigned) {
  const Partition p(4, 2);
  EXPECT_EQ(p.num_vertices(), 4u);
  EXPECT_EQ(p.num_parts(), 2u);
  EXPECT_FALSE(p.fully_assigned());
  EXPECT_EQ(p[0], kUnassigned);
}

TEST(Partition, AssignAndRead) {
  Partition p(3, 2);
  p.assign(0, 0);
  p.assign(1, 1);
  p.assign(2, 1);
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p[0], 0u);
  EXPECT_EQ(p[2], 1u);
}

TEST(Partition, AssignValidatesRanges) {
  Partition p(3, 2);
  EXPECT_THROW(p.assign(5, 0), CheckError);
  EXPECT_THROW(p.assign(0, 2), CheckError);
}

TEST(Partition, WrapConstructorValidates) {
  EXPECT_NO_THROW(Partition({0, 1, kUnassigned}, 2));
  EXPECT_THROW(Partition({0, 3}, 2), CheckError);
}

TEST(Partition, VertexCounts) {
  Partition p(5, 3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  p.assign(4, 1);
  const auto counts = p.vertex_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 0u);
}

TEST(Partition, VertexCountsIgnoreUnassigned) {
  Partition p(3, 2);
  p.assign(0, 1);
  const auto counts = p.vertex_counts();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Partition, EdgeCountsAreOwnedOutDegrees) {
  // Path 0-1-2-3: out-degrees 1,1,1,0.
  const Graph g = path_graph(4);
  Partition p(4, 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  const auto ec = p.edge_counts(g);
  EXPECT_EQ(ec[0], 2u);
  EXPECT_EQ(ec[1], 1u);
}

TEST(Partition, EdgeCountsRejectMismatchedGraph) {
  const Graph g = path_graph(4);
  const Partition p(3, 2);
  EXPECT_THROW(p.edge_counts(g), CheckError);
}

TEST(Partition, RemappedMergesParts) {
  Partition p(4, 4);
  for (graph::VertexId v = 0; v < 4; ++v) p.assign(v, v);
  // Merge 0+3 -> 0 and 1+2 -> 1 (the BPart pairing pattern).
  const Partition merged = p.remapped({0, 1, 1, 0});
  EXPECT_EQ(merged.num_parts(), 2u);
  EXPECT_EQ(merged[0], 0u);
  EXPECT_EQ(merged[3], 0u);
  EXPECT_EQ(merged[1], 1u);
  EXPECT_EQ(merged[2], 1u);
}

TEST(Partition, RemappedPreservesUnassigned) {
  Partition p(2, 2);
  p.assign(0, 1);
  const Partition m = p.remapped({0, 0});
  EXPECT_EQ(m[0], 0u);
  EXPECT_EQ(m[1], kUnassigned);
}

TEST(Partition, RemappedValidatesTableSize) {
  const Partition p(2, 3);
  EXPECT_THROW(p.remapped({0, 1}), CheckError);
}

}  // namespace
}  // namespace bpart::partition
