// Parameterized property sweeps: invariants every partitioner must satisfy
// on every graph family, for every part count.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;

enum class Family { kRmat, kBarabasiAlbert, kErdosRenyi, kWattsStrogatz };

Graph make_graph(Family f) {
  switch (f) {
    case Family::kRmat: {
      graph::RmatConfig cfg;
      cfg.scale = 11;
      cfg.edge_factor = 12;
      return Graph::from_edges_symmetric(graph::rmat(cfg));
    }
    case Family::kBarabasiAlbert: {
      graph::BarabasiAlbertConfig cfg;
      cfg.num_vertices = 2000;
      cfg.attach = 6;
      return Graph::from_edges(graph::barabasi_albert(cfg));
    }
    case Family::kErdosRenyi: {
      graph::ErdosRenyiConfig cfg;
      cfg.num_vertices = 2000;
      cfg.num_edges = 24000;
      return Graph::from_edges_symmetric(graph::erdos_renyi(cfg));
    }
    case Family::kWattsStrogatz: {
      graph::WattsStrogatzConfig cfg;
      cfg.num_vertices = 2000;
      cfg.k = 6;
      cfg.beta = 0.1;
      return Graph::from_edges(graph::watts_strogatz(cfg));
    }
  }
  return Graph{};
}

std::string family_name(Family f) {
  switch (f) {
    case Family::kRmat: return "rmat";
    case Family::kBarabasiAlbert: return "ba";
    case Family::kErdosRenyi: return "er";
    case Family::kWattsStrogatz: return "ws";
  }
  return "?";
}

using Param = std::tuple<std::string, Family, PartId>;

class PartitionerProperty : public ::testing::TestWithParam<Param> {};

TEST_P(PartitionerProperty, ProducesValidPartition) {
  const auto& [algo, family, k] = GetParam();
  const Graph g = make_graph(family);
  const Partition p = create(algo)->partition(g, k);

  // Invariant 1: every vertex assigned to a legal part.
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), k);

  // Invariant 2: counts are conserved — no vertex or edge lost.
  const auto vc = p.vertex_counts();
  const auto ec = p.edge_counts(g);
  EXPECT_EQ(std::accumulate(vc.begin(), vc.end(), std::uint64_t{0}),
            g.num_vertices());
  EXPECT_EQ(std::accumulate(ec.begin(), ec.end(), std::uint64_t{0}),
            g.num_edges());

  // Invariant 3: cut ratio is a valid probability and zero for k=1.
  const double cut = edge_cut_ratio(g, p);
  EXPECT_GE(cut, 0.0);
  EXPECT_LE(cut, 1.0);
  if (k == 1) {
    EXPECT_DOUBLE_EQ(cut, 0.0);
  }

  // Invariant 4: cut matrix totals equal the edge count.
  const auto m = cut_matrix(g, p);
  std::uint64_t total = 0;
  std::uint64_t off_diagonal = 0;
  for (PartId i = 0; i < k; ++i)
    for (PartId j = 0; j < k; ++j) {
      total += m[i][j];
      if (i != j) off_diagonal += m[i][j];
    }
  EXPECT_EQ(total, g.num_edges());
  EXPECT_EQ(off_diagonal, edge_cut_count(g, p));
}

TEST_P(PartitionerProperty, DeterministicAcrossRuns) {
  const auto& [algo, family, k] = GetParam();
  const Graph g = make_graph(family);
  const Partition a = create(algo)->partition(g, k);
  const Partition b = create(algo)->partition(g, k);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 37)
    ASSERT_EQ(a[v], b[v]) << algo << " unstable at vertex " << v;
}

std::vector<Param> all_params() {
  std::vector<Param> params;
  for (const std::string& algo : all_algorithms())
    for (Family f : {Family::kRmat, Family::kBarabasiAlbert,
                     Family::kErdosRenyi, Family::kWattsStrogatz})
      for (PartId k : {1u, 2u, 5u, 8u})
        params.emplace_back(algo, f, k);
  return params;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param) + "_" +
                     family_name(std::get<1>(info.param)) + "_k" +
                     std::to_string(std::get<2>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, PartitionerProperty,
                         ::testing::ValuesIn(all_params()), param_name);

}  // namespace
}  // namespace bpart::partition
