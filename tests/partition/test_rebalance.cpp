#include "partition/rebalance.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/fennel.hpp"
#include "partition/chunk.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"
#include "util/check.hpp"

namespace bpart::partition {
namespace {

using graph::Graph;
using testing::social_graph;

TEST(Rebalance, FixesFennelEdgeImbalance) {
  const Graph g = social_graph();
  Partition p = Fennel().partition(g, 8);
  const auto before = evaluate(g, p);
  ASSERT_GT(before.edge_summary.bias, 0.3);  // Fennel's known skew

  const RebalanceStats stats = rebalance(g, p);
  const auto after = evaluate(g, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_LE(after.vertex_summary.bias, 0.11);
  EXPECT_LE(after.edge_summary.bias, 0.11);
  EXPECT_GT(stats.moves, 0u);
  EXPECT_DOUBLE_EQ(stats.final_edge_bias, after.edge_summary.bias);
}

TEST(Rebalance, PreservesAssignmentValidity) {
  const Graph g = social_graph();
  Partition p = ChunkE().partition(g, 8);
  rebalance(g, p);
  EXPECT_TRUE(p.fully_assigned());
  const auto vc = p.vertex_counts();
  EXPECT_EQ(std::accumulate(vc.begin(), vc.end(), std::uint64_t{0}),
            g.num_vertices());
}

TEST(Rebalance, AlreadyBalancedIsNoop) {
  const Graph g = social_graph();
  Partition p = create("bpart")->partition(g, 8);
  const auto before = p.vertex_counts();
  const RebalanceStats stats = rebalance(g, p);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.moves, 0u);
  EXPECT_EQ(p.vertex_counts(), before);
}

TEST(Rebalance, CutGrowsButStaysBelowHashLevel) {
  // Moving boundary vertices costs cut, but the overlap-aware destination
  // choice must keep the damage well under random placement.
  const Graph g = social_graph();
  Partition p = Fennel().partition(g, 8);
  const double cut_before = edge_cut_ratio(g, p);
  rebalance(g, p);
  const double cut_after = edge_cut_ratio(g, p);
  EXPECT_GE(cut_after, cut_before);  // no free lunch
  EXPECT_LT(cut_after, 0.875);       // far from hash's 7/8
}

TEST(Rebalance, RespectsMoveBudget) {
  const Graph g = social_graph();
  Partition p = ChunkE().partition(g, 8);
  RebalanceConfig cfg;
  cfg.max_moves = 10;
  const RebalanceStats stats = rebalance(g, p, cfg);
  EXPECT_LE(stats.moves, 10u);
}

TEST(Rebalance, RejectsPartialAssignment) {
  const Graph g = social_graph();
  Partition p(g.num_vertices(), 4);
  EXPECT_THROW(rebalance(g, p), CheckError);
}

TEST(Rebalance, DeterministicAcrossRuns) {
  const Graph g = social_graph();
  Partition a = Fennel().partition(g, 8);
  Partition b = Fennel().partition(g, 8);
  rebalance(g, a);
  rebalance(g, b);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 71)
    EXPECT_EQ(a[v], b[v]);
}

}  // namespace
}  // namespace bpart::partition
