// Parameterized rebalance properties: for every base algorithm and part
// count, rebalancing must preserve validity, never lose vertices or edges,
// and never worsen the overload criterion it optimizes.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "partition/metrics.hpp"
#include "partition/rebalance.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"

namespace bpart::partition {
namespace {

using Param = std::tuple<std::string, PartId>;

class RebalanceProperty : public ::testing::TestWithParam<Param> {};

TEST_P(RebalanceProperty, PreservesValidityAndImproves) {
  const auto& [algo, k] = GetParam();
  const graph::Graph g = testing::social_graph();
  Partition p = create(algo)->partition(g, k);
  const auto before = evaluate(g, p);

  const RebalanceStats stats = rebalance(g, p);

  // Validity and conservation.
  EXPECT_TRUE(p.fully_assigned());
  EXPECT_EQ(p.num_parts(), k);
  const auto vc = p.vertex_counts();
  const auto ec = p.edge_counts(g);
  EXPECT_EQ(std::accumulate(vc.begin(), vc.end(), std::uint64_t{0}),
            g.num_vertices());
  EXPECT_EQ(std::accumulate(ec.begin(), ec.end(), std::uint64_t{0}),
            g.num_edges());

  // The optimized objective (worst-side bias in either dimension) must not
  // regress.
  const auto after = evaluate(g, p);
  const double before_worst =
      std::max(before.vertex_summary.bias, before.edge_summary.bias);
  const double after_worst =
      std::max(after.vertex_summary.bias, after.edge_summary.bias);
  EXPECT_LE(after_worst, before_worst + 1e-9);

  // Stats must reflect reality.
  EXPECT_DOUBLE_EQ(stats.final_vertex_bias, after.vertex_summary.bias);
  EXPECT_DOUBLE_EQ(stats.final_edge_bias, after.edge_summary.bias);
  if (stats.converged) {
    EXPECT_LE(after.vertex_summary.bias, 0.1 + 1e-9);
    EXPECT_LE(after.edge_summary.bias, 0.1 + 1e-9);
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name = std::get<0>(info.param) + "_k" +
                     std::to_string(std::get<1>(info.param));
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

std::vector<Param> params() {
  std::vector<Param> out;
  for (const auto& algo : paper_algorithms())
    for (PartId k : {2u, 4u, 8u}) out.emplace_back(algo, k);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllBases, RebalanceProperty,
                         ::testing::ValuesIn(params()), param_name);

}  // namespace
}  // namespace bpart::partition
