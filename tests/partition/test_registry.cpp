#include "partition/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace bpart::partition {
namespace {

TEST(Registry, EveryNameResolvesAndRoundTrips) {
  for (const auto& name : all_algorithms()) {
    const auto partitioner = create(name);
    ASSERT_NE(partitioner, nullptr) << name;
    EXPECT_EQ(partitioner->name(), name);
  }
}

TEST(Registry, PaperListIsSubsetOfAll) {
  const std::set<std::string> all(all_algorithms().begin(),
                                  all_algorithms().end());
  for (const auto& name : paper_algorithms())
    EXPECT_TRUE(all.count(name)) << name;
}

TEST(Registry, PaperOrderMatchesEvaluationSection) {
  // §4 compares Chunk-V, Chunk-E, Fennel, Hash against BPart.
  const auto& names = paper_algorithms();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "chunk-v");
  EXPECT_EQ(names[1], "chunk-e");
  EXPECT_EQ(names[2], "fennel");
  EXPECT_EQ(names[3], "hash");
  EXPECT_EQ(names[4], "bpart");
}

TEST(Registry, NamesAreUnique) {
  const std::set<std::string> unique(all_algorithms().begin(),
                                     all_algorithms().end());
  EXPECT_EQ(unique.size(), all_algorithms().size());
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(create("metis"), std::out_of_range);
  EXPECT_THROW(create(""), std::out_of_range);
}

}  // namespace
}  // namespace bpart::partition
