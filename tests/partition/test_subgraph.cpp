#include "partition/subgraph.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/metrics.hpp"
#include "partition/registry.hpp"
#include "test_graphs.hpp"
#include "util/check.hpp"

namespace bpart::partition {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

Partition adjacent_split(const Graph& g) {
  Partition p(g.num_vertices(), 2);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 1);
  p.assign(3, 1);
  return p;
}

TEST(Subgraph, SquareSplitStructure) {
  const Graph g = square();
  const Partition p = adjacent_split(g);
  const auto subs = build_subgraphs(g, p);
  ASSERT_EQ(subs.size(), 2u);

  // Part 0 owns {0, 1}; its ghosts are {2, 3} (each touched by one cut
  // edge).
  const Subgraph& s0 = subs[0];
  EXPECT_EQ(s0.num_local, 2u);
  EXPECT_EQ(s0.num_ghosts, 2u);
  EXPECT_EQ(s0.global_id[0], 0u);
  EXPECT_EQ(s0.global_id[1], 1u);
  EXPECT_EQ(s0.cut_edges, 2u);  // 1->2 and 0->3
  for (PartId owner : s0.ghost_owner) EXPECT_EQ(owner, 1u);

  // Owned adjacency is complete: vertex 0 (local 0) has degree 2.
  EXPECT_EQ(s0.local.out_degree(0), 2u);
  // Ghosts carry no local out-edges.
  EXPECT_EQ(s0.local.out_degree(2), 0u);
  EXPECT_EQ(s0.local.out_degree(3), 0u);
}

TEST(Subgraph, VerifyAcceptsCorrectBuild) {
  const Graph g = square();
  const Partition p = adjacent_split(g);
  const auto subs = build_subgraphs(g, p);
  EXPECT_TRUE(verify_subgraphs(g, p, subs));
}

TEST(Subgraph, VerifyRejectsTampering) {
  const Graph g = square();
  const Partition p = adjacent_split(g);
  auto subs = build_subgraphs(g, p);
  subs[0].cut_edges += 1;
  EXPECT_FALSE(verify_subgraphs(g, p, subs));
}

TEST(Subgraph, EveryPaperAlgorithmProducesVerifiableSubgraphs) {
  const Graph g = testing::social_graph();
  for (const auto& algo : paper_algorithms()) {
    const Partition p = create(algo)->partition(g, 8);
    const auto subs = build_subgraphs(g, p);
    ASSERT_TRUE(verify_subgraphs(g, p, subs)) << algo;
    // Per-part cut edges sum to the global cut count.
    std::uint64_t cut = 0;
    for (const auto& sub : subs) cut += sub.cut_edges;
    EXPECT_EQ(cut, edge_cut_count(g, p)) << algo;
  }
}

TEST(Subgraph, GhostFractionTracksCutRatio) {
  // Hash's subgraphs are ghost-heavy; BPart's much less so — the memory
  // overhead side of the communication story.
  const Graph g = testing::social_graph();
  auto footprint = [&](const std::string& algo) {
    const Partition p = create(algo)->partition(g, 8);
    const auto subs = build_subgraphs(g, p);
    std::uint64_t ghosts = 0, locals = 0, cut = 0;
    for (const auto& sub : subs) {
      ghosts += sub.num_ghosts;
      locals += sub.num_local;
      cut += sub.cut_edges;
    }
    return std::pair{static_cast<double>(ghosts) /
                         static_cast<double>(locals),
                     cut};
  };
  const auto [hash_ghosts, hash_cut] = footprint("hash");
  const auto [bpart_ghosts, bpart_cut] = footprint("bpart");
  // Ghost tables saturate once most hubs are ghosts everywhere, so the
  // ratio compresses — but it must still favor BPart, and the cut-edge
  // (message schedule) gap stays wide.
  EXPECT_GT(hash_ghosts, 1.2 * bpart_ghosts);
  EXPECT_GT(hash_cut, 1.3 * bpart_cut);
}

TEST(Subgraph, RequiresFullAssignment) {
  const Graph g = square();
  Partition partial(4, 2);
  partial.assign(0, 0);
  EXPECT_THROW(build_subgraphs(g, partial), CheckError);
}

TEST(Subgraph, SinglePartHasNoGhosts) {
  const Graph g = square();
  Partition p(4, 1);
  for (graph::VertexId v = 0; v < 4; ++v) p.assign(v, 0);
  const auto subs = build_subgraphs(g, p);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0].num_ghosts, 0u);
  EXPECT_EQ(subs[0].cut_edges, 0u);
  EXPECT_EQ(subs[0].local.num_edges(), g.num_edges());
  EXPECT_TRUE(verify_subgraphs(g, p, subs));
}

}  // namespace
}  // namespace bpart::partition
