#include "partition/vertex_cut.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "test_graphs.hpp"
#include "util/check.hpp"

namespace bpart::partition {
namespace {

using graph::EdgeList;
using graph::Graph;
using testing::social_graph;

Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

TEST(EdgePartitionType, AssignAndCount) {
  EdgePartition ep(4, 2);
  EXPECT_FALSE(ep.fully_assigned());
  ep.assign(0, 0);
  ep.assign(1, 1);
  ep.assign(2, 1);
  ep.assign(3, 0);
  EXPECT_TRUE(ep.fully_assigned());
  const auto counts = ep.edge_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(EdgePartitionType, Validates) {
  EdgePartition ep(2, 2);
  EXPECT_THROW(ep.assign(5, 0), CheckError);
  EXPECT_THROW(ep.assign(0, 7), CheckError);
}

TEST(ReplicationReportTest, SinglePartMeansOneCopyEach) {
  const Graph g = square();
  EdgePartition ep(g.num_edges(), 1);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) ep.assign(e, 0);
  const auto r = replication_report(g, ep);
  EXPECT_DOUBLE_EQ(r.replication_factor, 1.0);
  EXPECT_DOUBLE_EQ(r.max_copies, 1.0);
}

TEST(ReplicationReportTest, SplitSquareReplicatesBoundary) {
  // Square 0-1-2-3-0; put edges {0-1, 1-2} on part 0 and {2-3, 3-0} on
  // part 1 (both directions each). Vertices 0 and 2 appear on both parts.
  const Graph g = square();
  EdgePartition ep(g.num_edges(), 2);
  for (graph::VertexId v = 0; v < 4; ++v) {
    const auto nbrs = g.out_neighbors(v);
    for (graph::EdgeId i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId a = std::min(v, nbrs[i]);
      const graph::VertexId b = std::max(v, nbrs[i]);
      const bool part0 = (a == 0 && b == 1) || (a == 1 && b == 2);
      ep.assign(g.out_edge_index(v, i), part0 ? 0 : 1);
    }
  }
  const auto r = replication_report(g, ep);
  EXPECT_EQ(r.copies[0], 2u);
  EXPECT_EQ(r.copies[1], 1u);
  EXPECT_EQ(r.copies[2], 2u);
  EXPECT_EQ(r.copies[3], 1u);
  EXPECT_DOUBLE_EQ(r.replication_factor, 1.5);
}

using Placer = std::string;
class EdgePartitionerProperty : public ::testing::TestWithParam<Placer> {};

TEST_P(EdgePartitionerProperty, ValidAssignment) {
  const Graph g = social_graph();
  const auto ep = create_edge_partitioner(GetParam())->partition(g, 8);
  EXPECT_TRUE(ep.fully_assigned());
  const auto counts = ep.edge_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            g.num_edges());
}

TEST_P(EdgePartitionerProperty, SymmetricPairsShareParts) {
  // Both directions of an undirected edge must land on the same part.
  const Graph g = social_graph();
  const auto ep = create_edge_partitioner(GetParam())->partition(g, 8);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 7) {
    const auto nbrs = g.out_neighbors(v);
    for (graph::EdgeId i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId u = nbrs[i];
      const auto rev = g.out_neighbors(u);
      const auto it = std::lower_bound(rev.begin(), rev.end(), v);
      ASSERT_TRUE(it != rev.end() && *it == v);
      const graph::EdgeId rev_idx =
          g.out_edge_index(u, static_cast<graph::EdgeId>(it - rev.begin()));
      ASSERT_EQ(ep[g.out_edge_index(v, i)], ep[rev_idx]);
    }
  }
}

TEST_P(EdgePartitionerProperty, ReplicationWithinBounds) {
  const Graph g = social_graph();
  const auto ep = create_edge_partitioner(GetParam())->partition(g, 8);
  const auto r = replication_report(g, ep);
  EXPECT_GE(r.replication_factor, 1.0);
  EXPECT_LE(r.replication_factor, 8.0);
  EXPECT_LE(r.max_copies, 8.0);
}

INSTANTIATE_TEST_SUITE_P(AllPlacers, EdgePartitionerProperty,
                         ::testing::Values("random-edge", "dbh", "hdrf"),
                         [](const ::testing::TestParamInfo<Placer>& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(VertexCutComparison, SmartPlacersBeatRandomOnReplication) {
  // The published result this subsystem must reproduce: on power-law
  // graphs HDRF and DBH replicate far less than random edge placement.
  const Graph g = social_graph();
  const auto random =
      replication_report(g, RandomEdgePlacement().partition(g, 8));
  const auto dbh = replication_report(g, DegreeBasedHashing().partition(g, 8));
  const auto hdrf = replication_report(g, Hdrf().partition(g, 8));
  EXPECT_LT(dbh.replication_factor, random.replication_factor);
  EXPECT_LT(hdrf.replication_factor, random.replication_factor);
  EXPECT_LT(hdrf.replication_factor, 0.8 * random.replication_factor);
}

TEST(VertexCutComparison, HdrfBalancesEdges) {
  const Graph g = social_graph();
  const auto hdrf = replication_report(g, Hdrf().partition(g, 8));
  EXPECT_LT(hdrf.edge_bias, 0.2);
}

TEST(Hdrf, RejectsTooManyParts) {
  const Graph g = square();
  EXPECT_THROW(Hdrf().partition(g, 65), CheckError);
}

TEST(EdgePartitionerFactory, UnknownNameThrows) {
  EXPECT_THROW(create_edge_partitioner("greedy"), std::out_of_range);
}

}  // namespace
}  // namespace bpart::partition
