#include "pipeline/artifact_store.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"

namespace bpart::pipeline {
namespace {

namespace fs = std::filesystem;

class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bpart_artifact_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ArtifactStore store() const {
    return ArtifactStore(dir_.string());
  }

  [[nodiscard]] graph::Graph sample_graph() const {
    graph::RmatConfig cfg;
    cfg.scale = 9;
    cfg.edge_factor = 8;
    return graph::Graph::from_edges(graph::rmat(cfg));
  }

  /// Path of the single artifact file in the store (fails if not exactly 1).
  [[nodiscard]] fs::path only_artifact() const {
    fs::path found;
    int count = 0;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      found = entry.path();
      ++count;
    }
    EXPECT_EQ(count, 1);
    return found;
  }

  fs::path dir_;
};

void expect_same_graph(const graph::Graph& a, const graph::Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::ranges::equal(a.out_offsets(), b.out_offsets()));
  EXPECT_TRUE(std::ranges::equal(a.out_targets(), b.out_targets()));
  EXPECT_TRUE(std::ranges::equal(a.in_offsets(), b.in_offsets()));
  EXPECT_TRUE(std::ranges::equal(a.in_targets(), b.in_targets()));
}

TEST_F(ArtifactStoreTest, GraphRoundTripIsBitIdentical) {
  const graph::Graph g = sample_graph();
  const CacheKey key = CacheKey::for_spec("rmat:scale=9:ef=8");
  const ArtifactStore s = store();
  EXPECT_FALSE(s.load_graph(key).has_value());
  ASSERT_TRUE(s.store_graph(key, g));
  ASSERT_TRUE(s.has_graph(key));
  const auto loaded = s.load_graph(key);
  ASSERT_TRUE(loaded.has_value());
  expect_same_graph(*loaded, g);
}

TEST_F(ArtifactStoreTest, PartitionRoundTripIsBitIdentical) {
  std::vector<partition::PartId> assign = {0, 1, 2, 1, 0, partition::kUnassigned, 2};
  const partition::Partition p(assign, 3);
  const CacheKey key = CacheKey::for_spec("toy").derive(":algo=bpart:k=3");
  const ArtifactStore s = store();
  ASSERT_TRUE(s.store_partition(key, p));
  const auto loaded = s.load_partition(key);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->num_vertices(), p.num_vertices());
  EXPECT_EQ(loaded->num_parts(), p.num_parts());
  EXPECT_TRUE(std::ranges::equal(loaded->assignment(), p.assignment()));
}

TEST_F(ArtifactStoreTest, TruncatedEntryIsRejectedAndRemoved) {
  const CacheKey key = CacheKey::for_spec("trunc");
  const ArtifactStore s = store();
  ASSERT_TRUE(s.store_graph(key, sample_graph()));
  const fs::path file = only_artifact();
  fs::resize_file(file, fs::file_size(file) / 2);
  EXPECT_FALSE(s.load_graph(key).has_value());
  EXPECT_FALSE(fs::exists(file)) << "corrupt entry must be removed";
  // A rebuild (re-store) makes it loadable again.
  ASSERT_TRUE(s.store_graph(key, sample_graph()));
  EXPECT_TRUE(s.load_graph(key).has_value());
}

TEST_F(ArtifactStoreTest, BitFlippedPayloadFailsChecksum) {
  const CacheKey key = CacheKey::for_spec("flip");
  const ArtifactStore s = store();
  ASSERT_TRUE(s.store_graph(key, sample_graph()));
  const fs::path file = only_artifact();
  // Flip one byte in the middle of the payload.
  std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  f.seekp(size / 2);
  char c = 0;
  f.seekg(size / 2);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(size / 2);
  f.write(&c, 1);
  f.close();
  EXPECT_FALSE(s.load_graph(key).has_value());
}

TEST_F(ArtifactStoreTest, GarbageFileIsRejected) {
  const CacheKey key = CacheKey::for_spec("garbage");
  const ArtifactStore s = store();
  fs::create_directories(dir_);
  std::ofstream f(dir_ / (key.hex() + ".graph"), std::ios::binary);
  f << "this is not an artifact, padded well beyond the header size.......";
  f.close();
  EXPECT_FALSE(s.load_graph(key).has_value());
}

TEST_F(ArtifactStoreTest, ConfigChangeProducesDifferentKey) {
  const CacheKey base = CacheKey::for_spec("dataset:livejournal:scale=1");
  const CacheKey k8 = base.derive(":algo=bpart:k=8");
  const CacheKey k16 = base.derive(":algo=bpart:k=16");
  const CacheKey fennel8 = base.derive(":algo=fennel:k=8");
  EXPECT_NE(k8.hash(), k16.hash());
  EXPECT_NE(k8.hash(), fennel8.hash());
  EXPECT_NE(k16.hash(), fennel8.hash());
  EXPECT_NE(base.hash(), k8.hash());

  // Entries stored under one key are invisible under another.
  const ArtifactStore s = store();
  const partition::Partition p(std::vector<partition::PartId>{0, 1, 0}, 2);
  ASSERT_TRUE(s.store_partition(k8, p));
  EXPECT_TRUE(s.load_partition(k8).has_value());
  EXPECT_FALSE(s.load_partition(k16).has_value());
  EXPECT_FALSE(s.load_partition(fennel8).has_value());
}

TEST_F(ArtifactStoreTest, FileKeyTracksContentNotTimestamps) {
  fs::create_directories(dir_);
  const std::string input = (dir_ / "in.txt").string();
  std::ofstream(input) << "0 1\n";
  const CacheKey k1 = CacheKey::for_file(input, "tag");
  // Rewrite identical content: same key.
  std::ofstream(input) << "0 1\n";
  EXPECT_EQ(CacheKey::for_file(input, "tag").hash(), k1.hash());
  // Different content: different key.
  std::ofstream(input) << "0 2\n";
  EXPECT_NE(CacheKey::for_file(input, "tag").hash(), k1.hash());
  // Different tag (e.g. parser version bump): different key.
  std::ofstream(input) << "0 1\n";
  EXPECT_NE(CacheKey::for_file(input, "tag2").hash(), k1.hash());
}

TEST_F(ArtifactStoreTest, WrongKindIsRejected) {
  const CacheKey key = CacheKey::for_spec("kind");
  const ArtifactStore s = store();
  ASSERT_TRUE(s.store_graph(key, sample_graph()));
  // Rename the .graph artifact to .part: kind field no longer matches.
  const fs::path file = only_artifact();
  fs::rename(file, dir_ / (key.hex() + ".part"));
  EXPECT_FALSE(s.load_partition(key).has_value());
}

TEST_F(ArtifactStoreTest, PermRoundTripIsBitIdentical) {
  const std::vector<graph::VertexId> perm = {3, 0, 4, 1, 2};
  const CacheKey key = CacheKey::for_spec("base").derive(":ro=degree");
  const ArtifactStore s = store();
  EXPECT_FALSE(s.load_perm(key).has_value());
  EXPECT_FALSE(s.has_perm(key));
  ASSERT_TRUE(s.store_perm(key, perm));
  ASSERT_TRUE(s.has_perm(key));
  const auto loaded = s.load_perm(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, perm);
  // Empty permutations round-trip too (identity marker).
  const CacheKey empty_key = CacheKey::for_spec("base").derive(":ro=none");
  ASSERT_TRUE(s.store_perm(empty_key, {}));
  const auto empty = s.load_perm(empty_key);
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST_F(ArtifactStoreTest, TruncatedPermIsRejectedAndRemoved) {
  const CacheKey key = CacheKey::for_spec("permtrunc");
  const ArtifactStore s = store();
  std::vector<graph::VertexId> perm(256);
  for (graph::VertexId v = 0; v < perm.size(); ++v)
    perm[v] = static_cast<graph::VertexId>(perm.size() - 1 - v);
  ASSERT_TRUE(s.store_perm(key, perm));
  const fs::path file = only_artifact();
  fs::resize_file(file, fs::file_size(file) / 2);
  EXPECT_FALSE(s.load_perm(key).has_value());
  EXPECT_FALSE(fs::exists(file)) << "corrupt perm must be removed";
}

TEST_F(ArtifactStoreTest, PurgeRemovesEverything) {
  const ArtifactStore s = store();
  ASSERT_TRUE(s.store_graph(CacheKey::for_spec("a"), sample_graph()));
  ASSERT_TRUE(s.store_partition(
      CacheKey::for_spec("b"),
      partition::Partition(std::vector<partition::PartId>{0}, 1)));
  ASSERT_TRUE(s.store_perm(CacheKey::for_spec("c"), {1, 0}));
  EXPECT_EQ(s.purge(), 3u);
  EXPECT_FALSE(s.load_graph(CacheKey::for_spec("a")).has_value());
  EXPECT_FALSE(s.load_perm(CacheKey::for_spec("c")).has_value());
}

}  // namespace
}  // namespace bpart::pipeline
