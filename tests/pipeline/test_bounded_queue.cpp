#include "pipeline/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bpart::pipeline {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(BoundedQueue, ProducerBlocksWhenFullInsteadOfDropping) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(0));
  ASSERT_TRUE(q.push(1));

  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));  // must block until the consumer pops
    third_pushed.store(true);
  });

  // Give the producer ample time to (incorrectly) complete if push dropped
  // or overflowed instead of blocking.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load()) << "push on a full queue must block";
  EXPECT_EQ(q.size(), 2u);

  EXPECT_EQ(q.pop(), 0);
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  // Nothing was dropped: the remaining items come out in order.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
}

TEST(BoundedQueue, ExactlyOnceUnderConcurrentProducersAndConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(8);  // small capacity to force contention + blocking

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  }

  std::mutex seen_mutex;
  std::vector<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> local;
      while (auto v = q.pop()) local.push_back(*v);
      std::lock_guard<std::mutex> lock(seen_mutex);
      seen.insert(seen.end(), local.begin(), local.end());
    });
  }

  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i)
        << "item delivered zero or multiple times";
}

TEST(BoundedQueue, CloseDeliversPendingItemsThenNullopt) {
  BoundedQueue<int> q(8);
  ASSERT_TRUE(q.push(10));
  ASSERT_TRUE(q.push(11));
  q.close();
  EXPECT_EQ(q.pop(), 10);
  EXPECT_EQ(q.pop(), 11);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays drained
}

TEST(BoundedQueue, PushAfterCloseFails) {
  BoundedQueue<int> q(2);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BoundedQueue, CloseUnblocksWaitingProducerAndConsumer) {
  BoundedQueue<int> full(1);
  ASSERT_TRUE(full.push(0));
  std::thread blocked_producer([&] { EXPECT_FALSE(full.push(1)); });

  BoundedQueue<int> empty(1);
  std::thread blocked_consumer([&] { EXPECT_EQ(empty.pop(), std::nullopt); });

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  full.close();
  empty.close();
  blocked_producer.join();
  blocked_consumer.join();
}

TEST(BoundedQueue, MoveOnlyPayload) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(7)));
  auto out = q.pop();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(**out, 7);
}

}  // namespace
}  // namespace bpart::pipeline
