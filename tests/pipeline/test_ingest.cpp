#include "pipeline/ingest.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace bpart::pipeline {
namespace {

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("bpart_ingest_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::string write(const std::string& name, const std::string& content) {
    std::ofstream f(path(name), std::ios::binary);
    f << content;
    return path(name);
  }

  std::filesystem::path dir_;
};

void expect_same_edgelist(const graph::EdgeList& a, const graph::EdgeList& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << "edge " << i << " differs";
}

TEST_F(IngestTest, MatchesSequentialLoaderOnGeneratedGraph) {
  graph::RmatConfig cfg;
  cfg.scale = 12;
  cfg.edge_factor = 8;
  const graph::EdgeList el = graph::rmat(cfg);
  graph::save_text_edges(el, path("g.txt"));

  const graph::EdgeList seq = graph::load_text_edges(path("g.txt"));
  IngestConfig icfg;
  icfg.threads = 4;
  icfg.batch_edges = 1000;  // force many batches
  IngestReport report;
  const graph::EdgeList par = ingest_text_edges(path("g.txt"), icfg, &report);

  expect_same_edgelist(par, seq);
  EXPECT_EQ(report.edges, seq.size());
  EXPECT_GT(report.batches, 1u);
}

TEST_F(IngestTest, DeterministicAcrossThreadAndShardCounts) {
  graph::ErdosRenyiConfig cfg;
  cfg.num_vertices = 1 << 12;
  cfg.num_edges = 1 << 15;
  graph::save_text_edges(graph::erdos_renyi(cfg), path("g.txt"));

  IngestConfig one;
  one.threads = 1;
  one.shards_per_thread = 1;
  const graph::EdgeList base = ingest_text_edges(path("g.txt"), one);

  for (const unsigned threads : {2u, 3u, 7u}) {
    IngestConfig many;
    many.threads = threads;
    many.shards_per_thread = 5;
    many.batch_edges = 512;
    many.queue_capacity = 3;
    const graph::EdgeList out = ingest_text_edges(path("g.txt"), many);
    expect_same_edgelist(out, base);
  }
}

TEST_F(IngestTest, HandlesMessyButValidInput) {
  // CRLF line endings, blank CRLF lines, comments, tabs, commas, extra
  // columns (weights), trailing whitespace and a missing final newline —
  // everything a SNAP/KONECT dump can throw at the parser.
  const std::string messy =
      "# SNAP-style comment\r\n"
      "\r\n"
      "0 1\r\n"
      "1\t2 0.5\r\n"
      "% KONECT-style comment\n"
      "2,3\n"
      "   \t\n"
      " 3 4  \r\n"
      "4 5";
  write("messy.txt", messy);
  IngestConfig cfg;
  cfg.threads = 3;
  const graph::EdgeList el = ingest_text_edges(path("messy.txt"), cfg);
  ASSERT_EQ(el.size(), 5u);
  EXPECT_EQ(el[0], (graph::Edge{0, 1}));
  EXPECT_EQ(el[1], (graph::Edge{1, 2}));
  EXPECT_EQ(el[2], (graph::Edge{2, 3}));
  EXPECT_EQ(el[3], (graph::Edge{3, 4}));
  EXPECT_EQ(el[4], (graph::Edge{4, 5}));
  EXPECT_EQ(el.num_vertices(), 6u);
  // The hardened sequential loader agrees.
  expect_same_edgelist(el, graph::load_text_edges(path("messy.txt")));
}

TEST_F(IngestTest, EmptyAndCommentOnlyFiles) {
  write("empty.txt", "");
  EXPECT_EQ(ingest_text_edges(path("empty.txt")).size(), 0u);
  write("comments.txt", "# nothing\n% here\n\n");
  EXPECT_EQ(ingest_text_edges(path("comments.txt")).size(), 0u);
}

TEST_F(IngestTest, MalformedLineThrowsWithByteOffset) {
  write("bad.txt", "0 1\n1 2\nnot_an_edge\n3 4\n");
  IngestConfig cfg;
  cfg.threads = 4;
  try {
    ingest_text_edges(path("bad.txt"), cfg);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("byte offset 8"), std::string::npos) << what;
  }
}

TEST_F(IngestTest, MissingDstThrows) {
  write("half.txt", "42\n");
  EXPECT_THROW(ingest_text_edges(path("half.txt")), std::runtime_error);
}

TEST_F(IngestTest, MissingFileThrows) {
  EXPECT_THROW(ingest_text_edges(path("nope.txt")), std::runtime_error);
}

TEST_F(IngestTest, LargeFileWithTinyShardsDeliversEveryEdgeExactlyOnce) {
  // Many shards + tiny batches + tiny queue stresses the backpressure and
  // reorder paths; the line count is the ground truth.
  std::ofstream f(path("big.txt"), std::ios::binary);
  constexpr unsigned kEdges = 200000;
  for (unsigned i = 0; i < kEdges; ++i)
    f << i % 997 << ' ' << (i * 7 + 1) % 997 << '\n';
  f.close();

  IngestConfig cfg;
  cfg.threads = 8;
  cfg.shards_per_thread = 8;
  cfg.batch_edges = 256;
  cfg.queue_capacity = 2;
  IngestReport report;
  const graph::EdgeList el = ingest_text_edges(path("big.txt"), cfg, &report);
  ASSERT_EQ(el.size(), kEdges);
  for (unsigned i = 0; i < kEdges; i += 1013) {
    EXPECT_EQ(el[i].src, i % 997);
    EXPECT_EQ(el[i].dst, (i * 7 + 1) % 997);
  }
  EXPECT_GT(report.shards, 1u);
}

TEST_F(IngestTest, NonDeterministicModeDeliversSameEdgeMultiset) {
  graph::ErdosRenyiConfig cfg;
  cfg.num_vertices = 1 << 10;
  cfg.num_edges = 1 << 14;
  const graph::EdgeList el = graph::erdos_renyi(cfg);
  graph::save_text_edges(el, path("g.txt"));

  IngestConfig icfg;
  icfg.threads = 4;
  icfg.deterministic = false;
  icfg.batch_edges = 777;
  graph::EdgeList out = ingest_text_edges(path("g.txt"), icfg);
  ASSERT_EQ(out.size(), el.size());
  EXPECT_EQ(out.num_vertices(), el.num_vertices());
  // Same multiset of edges (order unspecified).
  std::vector<graph::Edge> a(el.edges().begin(), el.edges().end());
  std::vector<graph::Edge> b(out.edges().begin(), out.edges().end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace bpart::pipeline
