#include "pipeline/runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/registry.hpp"

namespace bpart::pipeline {
namespace {

namespace fs = std::filesystem;

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bpart_runner_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    graph::CommunityGraphConfig gen;
    gen.num_vertices = 1 << 11;
    gen.avg_degree = 12;
    gen.num_communities = 16;
    gen.seed = 7;
    input_ = (dir_ / "graph.txt").string();
    graph::save_text_edges(graph::community_scale_free(gen), input_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] PipelineConfig config() const {
    PipelineConfig cfg;
    cfg.ingest.threads = 4;
    cfg.ingest.batch_edges = 512;
    cfg.cache_dir = (dir_ / "cache").string();
    return cfg;
  }

  fs::path dir_;
  std::string input_;
};

void expect_same_partition(const partition::Partition& a,
                           const partition::Partition& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_parts(), b.num_parts());
  EXPECT_TRUE(std::ranges::equal(a.assignment(), b.assignment()));
}

TEST_F(RunnerTest, DeterministicModeMatchesLegacySingleStreamPath) {
  // The pipeline must produce exactly the partition the pre-pipeline code
  // path (load_text_edges -> from_edges -> registry) produced.
  const graph::Graph legacy_g =
      graph::Graph::from_edges(graph::load_text_edges(input_));
  const partition::Partition legacy_p =
      partition::create("bpart")->partition(legacy_g, 8);

  PipelineRunner runner(config());
  const auto result = runner.run_file(input_, "bpart", 8);
  EXPECT_EQ(result.graph.num_vertices(), legacy_g.num_vertices());
  EXPECT_EQ(result.graph.num_edges(), legacy_g.num_edges());
  expect_same_partition(result.partition, legacy_p);
  EXPECT_FALSE(runner.report().graph_cache_hit);
  EXPECT_FALSE(runner.report().partition_cache_hit);
  EXPECT_GT(runner.report().ingest.edges, 0u);
  EXPECT_GT(runner.report().degree_summary.n, 0u);
}

TEST_F(RunnerTest, WarmRunHitsCacheAndIsBitIdentical) {
  PipelineRunner cold(config());
  const auto first = cold.run_file(input_, "fennel", 4);
  ASSERT_FALSE(cold.report().partition_cache_hit);

  PipelineRunner warm(config());
  const auto second = warm.run_file(input_, "fennel", 4);
  EXPECT_TRUE(warm.report().graph_cache_hit);
  EXPECT_TRUE(warm.report().partition_cache_hit);
  EXPECT_EQ(warm.report().partition_seconds, 0.0);
  EXPECT_EQ(warm.report().ingest.edges, 0u) << "warm run must skip parsing";
  expect_same_partition(second.partition, first.partition);
  EXPECT_EQ(second.graph.num_edges(), first.graph.num_edges());
}

TEST_F(RunnerTest, CorruptCacheEntryIsRebuiltTransparently) {
  PipelineRunner cold(config());
  const auto first = cold.run_file(input_, "bpart", 4);

  // Truncate every cached artifact.
  for (const auto& entry : fs::directory_iterator(dir_ / "cache"))
    fs::resize_file(entry.path(), fs::file_size(entry.path()) / 3);

  PipelineRunner retry(config());
  const auto second = retry.run_file(input_, "bpart", 4);
  EXPECT_FALSE(retry.report().graph_cache_hit);
  EXPECT_FALSE(retry.report().partition_cache_hit);
  expect_same_partition(second.partition, first.partition);

  // And the rebuilt entries serve the next run.
  PipelineRunner warm(config());
  (void)warm.run_file(input_, "bpart", 4);
  EXPECT_TRUE(warm.report().graph_cache_hit);
  EXPECT_TRUE(warm.report().partition_cache_hit);
}

TEST_F(RunnerTest, EditingInputInvalidatesGraphKey) {
  PipelineRunner runner(config());
  (void)runner.run_file(input_, "hash", 4);
  ASSERT_TRUE(runner.cache_active());

  // Append one edge: the content hash, and therefore the key, changes.
  std::ofstream(input_, std::ios::app) << "0 1\n";
  PipelineRunner after(config());
  (void)after.run_file(input_, "hash", 4);
  EXPECT_FALSE(after.report().graph_cache_hit);
  EXPECT_FALSE(after.report().partition_cache_hit);
}

TEST_F(RunnerTest, CacheCanBeDisabled) {
  PipelineConfig cfg = config();
  cfg.use_cache = false;
  PipelineRunner runner(cfg);
  (void)runner.run_file(input_, "hash", 4);
  EXPECT_FALSE(fs::exists(dir_ / "cache"));

  PipelineRunner again(cfg);
  (void)again.run_file(input_, "hash", 4);
  EXPECT_FALSE(again.report().graph_cache_hit);
}

TEST_F(RunnerTest, SymmetrizeModeMatchesLegacySymmetricBuild) {
  PipelineConfig cfg = config();
  cfg.symmetrize = true;
  PipelineRunner runner(cfg);
  const graph::Graph g = runner.load_graph(input_);
  const graph::Graph legacy =
      graph::Graph::from_edges_symmetric(graph::load_text_edges(input_));
  ASSERT_EQ(g.num_vertices(), legacy.num_vertices());
  ASSERT_EQ(g.num_edges(), legacy.num_edges());
  EXPECT_TRUE(std::ranges::equal(g.out_offsets(), legacy.out_offsets()));
  EXPECT_TRUE(std::ranges::equal(g.out_targets(), legacy.out_targets()));
}

TEST_F(RunnerTest, AppendedEdgesInvalidatePartitionCache) {
  // Regression: the partition key used to hash only the input file + algo +
  // k, so a graph mutated in memory (delta compaction) under the same base
  // key served the stale pre-mutation partition. The key now folds in
  // graph_revision(), a content hash of the CSR itself.
  PipelineRunner runner(config());
  const auto first = runner.run_file(input_, "fennel", 4);
  ASSERT_FALSE(runner.report().partition_cache_hit);

  const graph::Edge extra[] = {{0, 1}, {1, 0}};
  const graph::Graph grown = first.graph.with_appended(
      extra, first.graph.num_vertices());
  ASSERT_NE(graph_revision(grown), graph_revision(first.graph));

  PipelineRunner after(config());
  const partition::Partition p =
      after.partition_graph(grown, after.graph_key(input_), "fennel", 4);
  EXPECT_FALSE(after.report().partition_cache_hit)
      << "mutated graph must not reuse the base graph's cached partition";
  EXPECT_EQ(p.num_vertices(), grown.num_vertices());

  // The unmodified graph still hits its own entry.
  PipelineRunner warm(config());
  (void)warm.run_file(input_, "fennel", 4);
  EXPECT_TRUE(warm.report().partition_cache_hit);
}

}  // namespace
}  // namespace bpart::pipeline
