#include "pipeline/runner.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "partition/registry.hpp"

namespace bpart::pipeline {
namespace {

namespace fs = std::filesystem;

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bpart_runner_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    graph::CommunityGraphConfig gen;
    gen.num_vertices = 1 << 11;
    gen.avg_degree = 12;
    gen.num_communities = 16;
    gen.seed = 7;
    input_ = (dir_ / "graph.txt").string();
    graph::save_text_edges(graph::community_scale_free(gen), input_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] PipelineConfig config() const {
    PipelineConfig cfg;
    cfg.ingest.threads = 4;
    cfg.ingest.batch_edges = 512;
    cfg.cache_dir = (dir_ / "cache").string();
    return cfg;
  }

  fs::path dir_;
  std::string input_;
};

void expect_same_partition(const partition::Partition& a,
                           const partition::Partition& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_parts(), b.num_parts());
  EXPECT_TRUE(std::ranges::equal(a.assignment(), b.assignment()));
}

TEST_F(RunnerTest, DeterministicModeMatchesLegacySingleStreamPath) {
  // The pipeline must produce exactly the partition the pre-pipeline code
  // path (load_text_edges -> from_edges -> registry) produced.
  const graph::Graph legacy_g =
      graph::Graph::from_edges(graph::load_text_edges(input_));
  const partition::Partition legacy_p =
      partition::create("bpart")->partition(legacy_g, 8);

  PipelineRunner runner(config());
  const auto result = runner.run_file(input_, "bpart", 8);
  EXPECT_EQ(result.graph.num_vertices(), legacy_g.num_vertices());
  EXPECT_EQ(result.graph.num_edges(), legacy_g.num_edges());
  expect_same_partition(result.partition, legacy_p);
  EXPECT_FALSE(runner.report().graph_cache_hit);
  EXPECT_FALSE(runner.report().partition_cache_hit);
  EXPECT_GT(runner.report().ingest.edges, 0u);
  EXPECT_GT(runner.report().degree_summary.n, 0u);
}

TEST_F(RunnerTest, WarmRunHitsCacheAndIsBitIdentical) {
  PipelineRunner cold(config());
  const auto first = cold.run_file(input_, "fennel", 4);
  ASSERT_FALSE(cold.report().partition_cache_hit);

  PipelineRunner warm(config());
  const auto second = warm.run_file(input_, "fennel", 4);
  EXPECT_TRUE(warm.report().graph_cache_hit);
  EXPECT_TRUE(warm.report().partition_cache_hit);
  EXPECT_EQ(warm.report().partition_seconds, 0.0);
  EXPECT_EQ(warm.report().ingest.edges, 0u) << "warm run must skip parsing";
  expect_same_partition(second.partition, first.partition);
  EXPECT_EQ(second.graph.num_edges(), first.graph.num_edges());
}

TEST_F(RunnerTest, CorruptCacheEntryIsRebuiltTransparently) {
  PipelineRunner cold(config());
  const auto first = cold.run_file(input_, "bpart", 4);

  // Truncate every cached artifact.
  for (const auto& entry : fs::directory_iterator(dir_ / "cache"))
    fs::resize_file(entry.path(), fs::file_size(entry.path()) / 3);

  PipelineRunner retry(config());
  const auto second = retry.run_file(input_, "bpart", 4);
  EXPECT_FALSE(retry.report().graph_cache_hit);
  EXPECT_FALSE(retry.report().partition_cache_hit);
  expect_same_partition(second.partition, first.partition);

  // And the rebuilt entries serve the next run.
  PipelineRunner warm(config());
  (void)warm.run_file(input_, "bpart", 4);
  EXPECT_TRUE(warm.report().graph_cache_hit);
  EXPECT_TRUE(warm.report().partition_cache_hit);
}

TEST_F(RunnerTest, EditingInputInvalidatesGraphKey) {
  PipelineRunner runner(config());
  (void)runner.run_file(input_, "hash", 4);
  ASSERT_TRUE(runner.cache_active());

  // Append one edge: the content hash, and therefore the key, changes.
  std::ofstream(input_, std::ios::app) << "0 1\n";
  PipelineRunner after(config());
  (void)after.run_file(input_, "hash", 4);
  EXPECT_FALSE(after.report().graph_cache_hit);
  EXPECT_FALSE(after.report().partition_cache_hit);
}

TEST_F(RunnerTest, CacheCanBeDisabled) {
  PipelineConfig cfg = config();
  cfg.use_cache = false;
  PipelineRunner runner(cfg);
  (void)runner.run_file(input_, "hash", 4);
  EXPECT_FALSE(fs::exists(dir_ / "cache"));

  PipelineRunner again(cfg);
  (void)again.run_file(input_, "hash", 4);
  EXPECT_FALSE(again.report().graph_cache_hit);
}

TEST_F(RunnerTest, SymmetrizeModeMatchesLegacySymmetricBuild) {
  PipelineConfig cfg = config();
  cfg.symmetrize = true;
  PipelineRunner runner(cfg);
  const graph::Graph g = runner.load_graph(input_);
  const graph::Graph legacy =
      graph::Graph::from_edges_symmetric(graph::load_text_edges(input_));
  ASSERT_EQ(g.num_vertices(), legacy.num_vertices());
  ASSERT_EQ(g.num_edges(), legacy.num_edges());
  EXPECT_TRUE(std::ranges::equal(g.out_offsets(), legacy.out_offsets()));
  EXPECT_TRUE(std::ranges::equal(g.out_targets(), legacy.out_targets()));
}

TEST_F(RunnerTest, AppendedEdgesInvalidatePartitionCache) {
  // Regression: the partition key used to hash only the input file + algo +
  // k, so a graph mutated in memory (delta compaction) under the same base
  // key served the stale pre-mutation partition. The key now folds in
  // graph_revision(), a content hash of the CSR itself.
  PipelineRunner runner(config());
  const auto first = runner.run_file(input_, "fennel", 4);
  ASSERT_FALSE(runner.report().partition_cache_hit);

  const graph::Edge extra[] = {{0, 1}, {1, 0}};
  const graph::Graph grown = first.graph.with_appended(
      extra, first.graph.num_vertices());
  ASSERT_NE(graph_revision(grown), graph_revision(first.graph));

  PipelineRunner after(config());
  const partition::Partition p =
      after.partition_graph(grown, after.graph_key(input_), "fennel", 4);
  EXPECT_FALSE(after.report().partition_cache_hit)
      << "mutated graph must not reuse the base graph's cached partition";
  EXPECT_EQ(p.num_vertices(), grown.num_vertices());

  // The unmodified graph still hits its own entry.
  PipelineRunner warm(config());
  (void)warm.run_file(input_, "fennel", 4);
  EXPECT_TRUE(warm.report().partition_cache_hit);
}

TEST_F(RunnerTest, ReorderStageRelabelsAndExposesThePermutation) {
  PipelineConfig cfg = config();
  cfg.reorder = ReorderMode::kDegree;
  PipelineRunner runner(cfg);
  const auto result = runner.run_file(input_, "chunk-v", 4);

  // The permutation is a real permutation and the graph is the base graph
  // relabeled by exactly it.
  ASSERT_FALSE(result.perm.empty());
  ASSERT_TRUE(graph::is_permutation(result.perm));
  EXPECT_EQ(result.perm, runner.permutation());
  const graph::Graph base =
      graph::Graph::from_edges(graph::load_text_edges(input_));
  const graph::Graph relabeled = graph::apply_permutation(base, result.perm);
  EXPECT_TRUE(std::ranges::equal(result.graph.out_offsets(),
                                 relabeled.out_offsets()));
  EXPECT_TRUE(std::ranges::equal(result.graph.out_targets(),
                                 relabeled.out_targets()));

  // Degree mode: hubs first.
  for (graph::VertexId v = 1; v < result.graph.num_vertices(); ++v)
    ASSERT_GE(result.graph.out_degree(v - 1), result.graph.out_degree(v));

  // to_internal/unpermute round the boundary: a per-vertex value computed
  // in internal ids lands back on the external id.
  std::vector<graph::VertexId> internal_ids(result.graph.num_vertices());
  for (graph::VertexId v = 0; v < result.graph.num_vertices(); ++v)
    internal_ids[v] = v;
  const auto external = PipelineRunner::unpermute(internal_ids, result.perm);
  for (graph::VertexId v = 0; v < base.num_vertices(); ++v)
    EXPECT_EQ(external[v], PipelineRunner::to_internal(v, result.perm));
}

TEST_F(RunnerTest, WarmReorderRunHitsTheReorderedCache) {
  PipelineConfig cfg = config();
  cfg.reorder = ReorderMode::kBfs;
  PipelineRunner cold(cfg);
  const auto first = cold.run_file(input_, "chunk-v", 4);
  ASSERT_FALSE(cold.report().reorder_cache_hit);

  PipelineRunner warm(cfg);
  const auto second = warm.run_file(input_, "chunk-v", 4);
  EXPECT_TRUE(warm.report().graph_cache_hit);
  EXPECT_TRUE(warm.report().reorder_cache_hit);
  EXPECT_TRUE(warm.report().partition_cache_hit);
  EXPECT_EQ(second.perm, first.perm);
  EXPECT_EQ(second.graph.num_edges(), first.graph.num_edges());
  EXPECT_TRUE(std::ranges::equal(second.graph.out_targets(),
                                 first.graph.out_targets()));
  expect_same_partition(second.partition, first.partition);
}

TEST_F(RunnerTest, ReorderModesGetDistinctCacheEntriesAndNoneKeepsLegacyKey) {
  // A kNone run and a default-config run share the historical key (warm
  // caches survive the reorder feature), while each mode keys its own
  // graph+perm pair.
  PipelineRunner plain(config());
  (void)plain.run_file(input_, "chunk-v", 4);

  PipelineConfig none_cfg = config();
  none_cfg.reorder = ReorderMode::kNone;
  PipelineRunner none(none_cfg);
  const auto none_result = none.run_file(input_, "chunk-v", 4);
  EXPECT_TRUE(none.report().graph_cache_hit);
  EXPECT_FALSE(none.report().reorder_cache_hit);
  EXPECT_TRUE(none_result.perm.empty()) << "identity order has no perm";

  PipelineConfig deg_cfg = config();
  deg_cfg.reorder = ReorderMode::kDegree;
  PipelineRunner deg(deg_cfg);
  (void)deg.run_file(input_, "chunk-v", 4);
  EXPECT_FALSE(deg.report().reorder_cache_hit)
      << "degree order must not reuse the identity entry";
  EXPECT_NE(deg.graph_key(input_).hash(), none.graph_key(input_).hash());

  // Random order folds the seed into the key.
  PipelineConfig r1 = config();
  r1.reorder = ReorderMode::kRandom;
  r1.reorder_seed = 1;
  PipelineConfig r2 = r1;
  r2.reorder_seed = 2;
  EXPECT_NE(PipelineRunner(r1).graph_key(input_).hash(),
            PipelineRunner(r2).graph_key(input_).hash());
}

}  // namespace
}  // namespace bpart::pipeline
