#include "util/check.hpp"

#include <gtest/gtest.h>

namespace bpart {
namespace {

TEST(Check, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(BPART_CHECK(1 + 1 == 2));
}

TEST(Check, FailureThrowsCheckError) {
  EXPECT_THROW(BPART_CHECK(false), CheckError);
}

TEST(Check, MessageCarriesContext) {
  try {
    BPART_CHECK_MSG(false, "part " << 3 << " overflows");
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("part 3 overflows"), std::string::npos);
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos);
  }
}

TEST(Check, ExpressionTextIncluded) {
  try {
    BPART_CHECK(2 > 3);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("2 > 3"), std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] { return ++calls > 0; };
  BPART_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace bpart
