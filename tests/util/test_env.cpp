#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace bpart {
namespace {

class ThreadCountTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("BPART_THREADS"); }
};

TEST_F(ThreadCountTest, DefaultsToAtLeastOne) {
  unsetenv("BPART_THREADS");
  EXPECT_GE(thread_count(), 1u);
}

TEST_F(ThreadCountTest, HonorsEnvOverride) {
  setenv("BPART_THREADS", "3", 1);
  EXPECT_EQ(thread_count(), 3u);
}

TEST_F(ThreadCountTest, RequestedCapsTheResult) {
  setenv("BPART_THREADS", "16", 1);
  EXPECT_EQ(thread_count(4), 4u);
  EXPECT_EQ(thread_count(32), 16u);
}

TEST_F(ThreadCountTest, ClampsHugeValues) {
  setenv("BPART_THREADS", "100000", 1);
  EXPECT_EQ(thread_count(), 256u);
}

TEST_F(ThreadCountTest, JunkFallsThroughToDefault) {
  setenv("BPART_THREADS", "banana", 1);
  const unsigned junk = thread_count();
  unsetenv("BPART_THREADS");
  EXPECT_EQ(junk, thread_count());

  setenv("BPART_THREADS", "0", 1);
  EXPECT_EQ(thread_count(), junk);
  setenv("BPART_THREADS", "-2", 1);
  EXPECT_EQ(thread_count(), junk);
}

TEST_F(ThreadCountTest, RereadsEnvironmentEachCall) {
  setenv("BPART_THREADS", "2", 1);
  EXPECT_EQ(thread_count(), 2u);
  setenv("BPART_THREADS", "5", 1);
  EXPECT_EQ(thread_count(), 5u);
}

class GlobalSeedTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("BPART_SEED"); }
};

TEST_F(GlobalSeedTest, HonorsEnvOverride) {
  setenv("BPART_SEED", "12345", 1);
  EXPECT_EQ(global_seed(), 12345u);
}

TEST_F(GlobalSeedTest, NegativeFallsThroughToDefault) {
  unsetenv("BPART_SEED");
  const std::uint64_t def = global_seed();
  // stoull would wrap "-1" to 2^64-1; the knob must reject it instead.
  setenv("BPART_SEED", "-1", 1);
  EXPECT_EQ(global_seed(), def);
}

TEST_F(GlobalSeedTest, JunkFallsThroughToDefault) {
  unsetenv("BPART_SEED");
  const std::uint64_t def = global_seed();
  setenv("BPART_SEED", "pepper", 1);
  EXPECT_EQ(global_seed(), def);
}

}  // namespace
}  // namespace bpart
