#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace bpart {
namespace {

TEST(Histogram, BinsSamplesCorrectly) {
  Histogram h(0, 10, 5);  // bins of width 2
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0, 10, 2);
  h.add(-1);
  h.add(10);
  h.add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 4, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.bin_count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, BinEdges) {
  Histogram h(10, 20, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 18);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, QuantileOfEmptyIsLo) {
  Histogram h(5, 10, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(Histogram, RejectsDegenerateRange) {
  EXPECT_THROW(Histogram(1, 1, 4), CheckError);
  EXPECT_THROW(Histogram(0, 10, 0), CheckError);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0, 2, 2);
  h.add(0.5, 3);
  const std::string s = h.render();
  EXPECT_NE(s.find("3"), std::string::npos);
  EXPECT_NE(s.find("###"), std::string::npos);
}

TEST(LogHistogram, PowersOfTwoBuckets) {
  LogHistogram h;
  h.add(0);   // bucket 0
  h.add(1);   // bucket 0 ([1,2))
  h.add(2);   // bucket 1
  h.add(3);   // bucket 1
  h.add(4);   // bucket 2
  h.add(1023);  // bucket 9
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(LogHistogram, MissingBucketsReadZero) {
  LogHistogram h;
  h.add(1);
  EXPECT_EQ(h.bucket_count(5), 0u);
  EXPECT_EQ(h.bucket_count(100), 0u);
}

TEST(LogHistogram, SlopeOfGeometricDecayIsNegative) {
  // counts halve per bucket -> slope of log2(count) vs bucket = -1.
  LogHistogram h;
  for (std::size_t b = 0; b < 10; ++b)
    h.add(std::uint64_t{1} << b, std::uint64_t{1} << (10 - b));
  EXPECT_NEAR(h.log_log_slope(), -1.0, 1e-9);
}

TEST(LogHistogram, SlopeNeedsTwoBuckets) {
  LogHistogram h;
  h.add(4, 100);
  EXPECT_DOUBLE_EQ(h.log_log_slope(), 0.0);
}

TEST(LogHistogram, QuantileInterpolatesInsideBucket) {
  LogHistogram h;
  h.add(700, 100);  // all samples in bucket 9 = [512, 1024)
  const double median = h.quantile(0.5);
  EXPECT_GE(median, 512.0);
  EXPECT_LE(median, 1024.0);
  // 50 of 100 samples -> halfway through the bucket's span.
  EXPECT_NEAR(median, 768.0, 1e-9);
}

TEST(LogHistogram, QuantileIsMonotoneAcrossBuckets) {
  LogHistogram h;
  h.add(10, 50);    // bucket 3 = [8, 16)
  h.add(1000, 40);  // bucket 9 = [512, 1024)
  h.add(5000, 10);  // bucket 12 = [4096, 8192)
  const double p10 = h.quantile(0.10);
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LT(p10, 16.0);
  EXPECT_GE(p95, 4096.0);
}

TEST(LogHistogram, QuantileEdgeCases) {
  LogHistogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  LogHistogram zeros;
  zeros.add(0, 10);  // bucket 0 spans [0, 2)
  EXPECT_GE(zeros.quantile(0.99), 0.0);
  EXPECT_LE(zeros.quantile(0.99), 2.0);

  LogHistogram h;
  h.add(100, 4);
  EXPECT_THROW((void)h.quantile(-0.1), CheckError);
  EXPECT_THROW((void)h.quantile(1.1), CheckError);
}

}  // namespace
}  // namespace bpart
