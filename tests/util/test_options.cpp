#include "util/options.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace bpart {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsSyntax) {
  const auto o = parse({"--parts=8"});
  EXPECT_EQ(o.get_int("parts", 0), 8);
}

TEST(Options, SpaceSyntax) {
  const auto o = parse({"--graph", "twitter"});
  EXPECT_EQ(o.get("graph", ""), "twitter");
}

TEST(Options, BareFlagIsTrue) {
  const auto o = parse({"--verbose"});
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.has("verbose"));
}

TEST(Options, PositionalArgsPreserved) {
  const auto o = parse({"input.txt", "--k=4", "output.txt"});
  ASSERT_EQ(o.positional().size(), 2u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.positional()[1], "output.txt");
}

TEST(Options, FallbacksWhenMissing) {
  const auto o = parse({});
  EXPECT_EQ(o.get("x", "def"), "def");
  EXPECT_EQ(o.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(o.get_bool("x", false));
}

TEST(Options, MalformedNumberFallsBack) {
  const auto o = parse({"--n=abc"});
  EXPECT_EQ(o.get_int("n", 3), 3);
  EXPECT_DOUBLE_EQ(o.get_double("n", 1.5), 1.5);
}

TEST(Options, DoubleParsing) {
  const auto o = parse({"--c=0.25"});
  EXPECT_DOUBLE_EQ(o.get_double("c", 0), 0.25);
}

TEST(Options, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=on"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=no"}).get_bool("a", true));
}

TEST(Options, EnvironmentFallback) {
  ::setenv("BPART_ENV_ONLY_KEY", "99", 1);
  const auto o = parse({});
  EXPECT_EQ(o.get_int("env-only-key", 0), 99);
  ::unsetenv("BPART_ENV_ONLY_KEY");
}

TEST(Options, CommandLineBeatsEnvironment) {
  ::setenv("BPART_PARTS", "64", 1);
  const auto o = parse({"--parts=8"});
  EXPECT_EQ(o.get_int("parts", 0), 8);
  ::unsetenv("BPART_PARTS");
}

TEST(Options, SetOverrides) {
  Options o;
  o.set("k", "5");
  EXPECT_EQ(o.get_int("k", 0), 5);
}

}  // namespace
}  // namespace bpart
