#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace bpart {
namespace {

TEST(SplitMix64, Deterministic) {
  EXPECT_EQ(splitmix64(0), splitmix64(0));
  EXPECT_NE(splitmix64(0), splitmix64(1));
}

TEST(SplitMix64, AvalanchesLowBits) {
  // Consecutive inputs must not produce consecutive outputs — the Hash
  // partitioner relies on this to spread adjacent vertex ids.
  std::set<std::uint64_t> low_bits;
  for (std::uint64_t i = 0; i < 64; ++i) low_bits.insert(splitmix64(i) % 8);
  EXPECT_EQ(low_bits.size(), 8u);  // every residue hit within 64 tries
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, BoundedStaysInRange) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.bounded(10);
    ASSERT_LT(x, 10u);
  }
}

TEST(Xoshiro256, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  std::vector<int> counts(8, 0);
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) EXPECT_NEAR(c, kN / 8, kN / 8 / 5);
}

TEST(Xoshiro256, BoundedOne) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Xoshiro256, JumpProducesDisjointStream) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  b.jump();
  // The jumped stream must not collide with the original's first values.
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i)
    if (first.count(b())) ++collisions;
  EXPECT_EQ(collisions, 0);
}

TEST(Xoshiro256, ChanceRespectsProbability) {
  Xoshiro256 rng(3);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i)
    if (rng.chance(0.2)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.2, 0.01);
}

TEST(ZipfSampler, InRange) {
  Xoshiro256 rng(17);
  ZipfSampler zipf(100, 1.2);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = zipf(rng);
    ASSERT_LT(x, 100u);
  }
}

TEST(ZipfSampler, HeavyHead) {
  // With exponent > 1 the most frequent value must be rank 0 and it should
  // dominate: P(0) ~ 1/H_n.
  Xoshiro256 rng(23);
  ZipfSampler zipf(1000, 1.5);
  std::vector<int> counts(1000, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) ++counts[zipf(rng)];
  const auto top = std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(top - counts.begin(), 0);
  EXPECT_GT(counts[0], counts[9] * 5);  // steep decay
}

TEST(ZipfSampler, SingletonSupport) {
  Xoshiro256 rng(29);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), CheckError);
  EXPECT_THROW(ZipfSampler(10, 0.0), CheckError);
}

TEST(CounterRng, FirstDrawsAreBitIdenticalToScalarStreams) {
  // The batched walk hot loop depends on this being exact, not approximate:
  // out_draw[j] must equal the first draw of CounterRng(seed, stream,
  // counter0 + j), and from_raw_state(out_state[j]) must continue that
  // stream draw-for-draw.
  constexpr std::size_t kBatch = 8;
  std::uint64_t draw[kBatch];
  std::uint64_t state[kBatch];
  for (const std::uint64_t seed : {0ull, 42ull, ~0ull}) {
    for (const std::uint64_t counter0 : {0ull, 1000ull, ~0ull - 3}) {
      CounterRng::first_draws(seed, 7, counter0, kBatch, draw, state);
      for (std::size_t j = 0; j < kBatch; ++j) {
        CounterRng scalar(seed, 7, counter0 + j);
        ASSERT_EQ(draw[j], scalar()) << "seed " << seed << " slot " << j;
        CounterRng resumed = CounterRng::from_raw_state(state[j]);
        for (int i = 0; i < 16; ++i)
          ASSERT_EQ(resumed(), scalar()) << "continuation draw " << i;
      }
    }
  }
}

TEST(CounterRng, StreamsAreDecorrelated) {
  // Adjacent (stream, counter) pairs must land in unrelated sequences.
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 32; ++s)
    for (std::uint64_t c = 0; c < 32; ++c) {
      CounterRng r(9, s, c);
      seen.insert(r());
    }
  EXPECT_EQ(seen.size(), 32u * 32u);
}

}  // namespace
}  // namespace bpart
