#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace bpart::stats {
namespace {

TEST(Bias, ZeroForUniformValues) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(bias(xs), 0.0);
}

TEST(Bias, MatchesPaperDefinition) {
  // max = 10, mean = 5 -> (10-5)/5 = 1.
  const std::vector<double> xs{0, 10, 5, 5};
  EXPECT_DOUBLE_EQ(bias(xs), 1.0);
}

TEST(Bias, EmptyAndZeroMeanAreZero) {
  EXPECT_DOUBLE_EQ(bias(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(bias(std::vector<double>{0, 0, 0}), 0.0);
}

TEST(Bias, SingleValueIsZero) {
  EXPECT_DOUBLE_EQ(bias(std::vector<double>{42.0}), 0.0);
}

TEST(JainFairness, OneForUniformValues) {
  const std::vector<double> xs{3, 3, 3};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 1.0);
}

TEST(JainFairness, OneOverNForSingleHotspot) {
  // One bucket holds everything: F = 1/n.
  const std::vector<double> xs{12, 0, 0, 0};
  EXPECT_DOUBLE_EQ(jain_fairness(xs), 0.25);
}

TEST(JainFairness, KnownMidpointValue) {
  // F((1,2,3)) = 36 / (3*14) = 6/7.
  const std::vector<double> xs{1, 2, 3};
  EXPECT_NEAR(jain_fairness(xs), 6.0 / 7.0, 1e-12);
}

TEST(JainFairness, BoundsHold) {
  const std::vector<double> xs{1, 9, 2, 7, 4};
  const double f = jain_fairness(xs);
  EXPECT_GE(f, 1.0 / static_cast<double>(xs.size()));
  EXPECT_LE(f, 1.0);
}

TEST(JainFairness, EmptyIsVacuouslyFair) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{0, 0}), 1.0);
}

TEST(JainFairness, UsesAbsoluteValues) {
  // Definition uses |x_i|; sign must not matter.
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{-3, 3, 3}), 1.0);
}

TEST(CoefficientOfVariation, ZeroForUniform) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(std::vector<double>{2, 2, 2}),
                   0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  // {0, 10}: mean 5, population stddev 5 -> CV = 1.
  EXPECT_DOUBLE_EQ(coefficient_of_variation(std::vector<double>{0, 10}), 1.0);
}

TEST(Gini, ZeroForUniform) {
  EXPECT_DOUBLE_EQ(gini(std::vector<double>{4, 4, 4, 4}), 0.0);
}

TEST(Gini, ApproachesOneForExtremeConcentration) {
  std::vector<double> xs(100, 0.0);
  xs.back() = 1000.0;
  EXPECT_GT(gini(xs), 0.95);
  EXPECT_LT(gini(xs), 1.0);
}

TEST(Gini, InvariantToScaling) {
  const std::vector<double> a{1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) b.push_back(x * 1000);
  EXPECT_NEAR(gini(a), gini(b), 1e-12);
}

TEST(MaxOverMin, ReportsTheGap) {
  // The paper quotes "the gap can reach up to 8x" — max/min.
  EXPECT_DOUBLE_EQ(max_over_min(std::vector<double>{61, 737}), 737.0 / 61.0);
}

TEST(MaxOverMin, InfiniteWhenMinIsZero) {
  EXPECT_TRUE(std::isinf(max_over_min(std::vector<double>{0, 5})));
  EXPECT_DOUBLE_EQ(max_over_min(std::vector<double>{0, 0}), 1.0);
}

TEST(MaxOverMean, KnownValue) {
  EXPECT_DOUBLE_EQ(max_over_mean(std::vector<double>{1, 3}), 1.5);
}

TEST(Summarize, AllFieldsConsistent) {
  const std::vector<double> xs{2, 4, 6, 8};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.min, 2);
  EXPECT_DOUBLE_EQ(s.max, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.bias, 0.6);
  EXPECT_NEAR(s.fairness, jain_fairness(xs), 1e-15);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize(std::vector<double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.bias, 0.0);
  EXPECT_DOUBLE_EQ(s.fairness, 1.0);
}

TEST(ToDoubles, ConvertsIntegralVectors) {
  const std::vector<std::uint64_t> xs{1, 2, 3};
  const auto d = to_doubles(xs);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
}

}  // namespace
}  // namespace bpart::stats
