#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/check.hpp"

namespace bpart {
namespace {

TEST(Table, RowBuilderAddsTypedCells) {
  Table t({"name", "count", "ratio"});
  t.row().cell("alpha").cell(std::int64_t{3}).cell(0.5);
  ASSERT_EQ(t.rows(), 1u);
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "alpha");
  EXPECT_EQ(std::get<std::int64_t>(t.at(0, 1)), 3);
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 2)), 0.5);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), CheckError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table(std::vector<std::string>{}), CheckError);
}

TEST(Table, AsciiContainsHeadersAndValues) {
  Table t({"algorithm", "cut"});
  t.row().cell("bpart").cell(0.53);
  const std::string s = t.to_ascii();
  EXPECT_NE(s.find("algorithm"), std::string::npos);
  EXPECT_NE(s.find("bpart"), std::string::npos);
  EXPECT_NE(s.find("0.53"), std::string::npos);
}

TEST(Table, CsvRoundsDoublesAtPrecision) {
  Table t({"x"});
  t.set_precision(2);
  t.row().cell(1.0 / 3.0);
  EXPECT_EQ(t.to_csv(), "x\n0.33\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"note"});
  t.row().cell("a,b \"q\"");
  EXPECT_EQ(t.to_csv(), "note\n\"a,b \"\"q\"\"\"\n");
}

TEST(Table, IntegerCellsHaveNoDecimalPoint) {
  Table t({"n"});
  t.row().cell(42);
  EXPECT_EQ(t.to_csv(), "n\n42\n");
}

TEST(Table, WriteCsvCreatesReadableFile) {
  Table t({"k", "v"});
  t.row().cell(1).cell(2);
  const auto path =
      std::filesystem::temp_directory_path() / "bpart_table_test.csv";
  ASSERT_TRUE(t.write_csv(path.string()));
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::filesystem::remove(path);
}

TEST(Table, WriteCsvFailsGracefully) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_zzz/out.csv"));
}

TEST(BenchOutputDir, CreatesDirectory) {
  // Point the env override at a fresh temp dir.
  const auto dir =
      std::filesystem::temp_directory_path() / "bpart_bench_out_test";
  std::filesystem::remove_all(dir);
  ::setenv("BPART_OUT_DIR", dir.c_str(), 1);
  const std::string out = bench_output_dir();
  EXPECT_EQ(out, dir.string());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  ::unsetenv("BPART_OUT_DIR");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace bpart
