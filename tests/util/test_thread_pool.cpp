#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/check.hpp"

namespace bpart {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i)
    futs.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerIsSequentiallyConsistent) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), CheckError);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, 4, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, 4, [&](std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for(0, 10, 1, [&](std::uint64_t, std::uint64_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelFor, MoreWorkersThanItems) {
  std::atomic<std::uint64_t> total{0};
  parallel_for(0, 3, 16, [&](std::uint64_t lo, std::uint64_t hi) {
    total += hi - lo;
  });
  EXPECT_EQ(total.load(), 3u);
}

TEST(ParallelFor, ChunksArePartition) {
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> chunks;
  parallel_for(10, 110, 7, [&](std::uint64_t lo, std::uint64_t hi) {
    std::lock_guard<std::mutex> g(mu);
    chunks.emplace_back(lo, hi);
  });
  std::sort(chunks.begin(), chunks.end());
  std::uint64_t expect = 10;
  for (auto [lo, hi] : chunks) {
    EXPECT_EQ(lo, expect);
    EXPECT_GT(hi, lo);
    expect = hi;
  }
  EXPECT_EQ(expect, 110u);
}

}  // namespace
}  // namespace bpart
