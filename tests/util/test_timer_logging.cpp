#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "util/logging.hpp"
#include "util/timer.hpp"

namespace bpart {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1e3, 5.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.010);
}

TEST(Timer, NanosMonotone) {
  Timer t;
  const auto a = t.nanos();
  const auto b = t.nanos();
  EXPECT_GE(b, a);
}

TEST(AccumTimer, AccumulatesAcrossIntervals) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  const double first = t.seconds();
  EXPECT_GE(first, 0.008);
  // Stopped: no accumulation.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_NEAR(t.seconds(), first, 1e-4);
  // Second interval adds on top.
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.stop();
  EXPECT_GE(t.seconds(), first + 0.008);
}

TEST(AccumTimer, RunningReadsIncludeCurrentInterval) {
  AccumTimer t;
  t.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.seconds(), 0.008);  // not stopped yet
}

TEST(AccumTimer, DoubleStartAndStopAreIdempotent) {
  AccumTimer t;
  t.start();
  t.start();
  t.stop();
  t.stop();
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_DOUBLE_EQ(t.seconds(), 0.0);
}

TEST(ScopedAccum, AccumulatesWhileInScope) {
  AccumTimer t;
  {
    ScopedAccum guard(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const double first = t.seconds();
  EXPECT_GE(first, 0.008);
  // Outside the scope nothing accumulates.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_NEAR(t.seconds(), first, 1e-4);
  // A second scope adds on top of the first.
  {
    ScopedAccum guard(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(t.seconds(), first + 0.008);
}

TEST(Logging, EnvVarSetsLevel) {
  const auto before = log::level();
  ASSERT_EQ(setenv("BPART_LOG", "debug", 1), 0);
  log::reinit_from_env();
  EXPECT_EQ(log::level(), log::Level::kDebug);

  ASSERT_EQ(setenv("BPART_LOG", "ERROR", 1), 0);
  log::reinit_from_env();
  EXPECT_EQ(log::level(), log::Level::kError);

  // Unset restores the library default (kWarn).
  ASSERT_EQ(unsetenv("BPART_LOG"), 0);
  log::reinit_from_env();
  EXPECT_EQ(log::level(), log::Level::kWarn);
  log::set_level(before);
}

TEST(Logging, UnknownEnvValueFallsBackToInfo) {
  const auto before = log::level();
  ASSERT_EQ(setenv("BPART_LOG", "shouting", 1), 0);
  log::reinit_from_env();
  EXPECT_EQ(log::level(), log::Level::kInfo);
  ASSERT_EQ(unsetenv("BPART_LOG"), 0);
  log::reinit_from_env();
  log::set_level(before);
}

TEST(Logging, SetLevelWinsOverLaterEnvQueries) {
  ASSERT_EQ(setenv("BPART_LOG", "trace", 1), 0);
  log::set_level(log::Level::kError);
  // level() must not re-read the environment once a level is installed.
  EXPECT_EQ(log::level(), log::Level::kError);
  ASSERT_EQ(unsetenv("BPART_LOG"), 0);
  log::reinit_from_env();
}

TEST(Logging, ParseLevelSpellsOut) {
  using log::Level;
  EXPECT_EQ(log::parse_level("trace"), Level::kTrace);
  EXPECT_EQ(log::parse_level("DEBUG"), Level::kDebug);
  EXPECT_EQ(log::parse_level("Info"), Level::kInfo);
  EXPECT_EQ(log::parse_level("warning"), Level::kWarn);
  EXPECT_EQ(log::parse_level("error"), Level::kError);
  EXPECT_EQ(log::parse_level("off"), Level::kOff);
  EXPECT_EQ(log::parse_level("bogus"), Level::kInfo);
}

TEST(Logging, LevelThresholdRoundTrips) {
  const auto before = log::level();
  log::set_level(log::Level::kError);
  EXPECT_EQ(log::level(), log::Level::kError);
  log::set_level(before);
}

TEST(Logging, MacroCompilesAndRespectsThreshold) {
  const auto before = log::level();
  log::set_level(log::Level::kOff);
  LOG_ERROR << "suppressed " << 42;  // must not crash, goes nowhere
  log::set_level(before);
}

}  // namespace
}  // namespace bpart
