#include "vcut/edge_partition.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/edge_list.hpp"
#include "util/check.hpp"

namespace bpart::vcut {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

TEST(EdgePartitionType, AssignAndCount) {
  EdgePartition ep(4, 2);
  EXPECT_FALSE(ep.fully_assigned());
  ep.assign(0, 0);
  ep.assign(1, 1);
  ep.assign(2, 1);
  ep.assign(3, 0);
  EXPECT_TRUE(ep.fully_assigned());
  const auto counts = ep.edge_counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(EdgePartitionType, Validates) {
  EdgePartition ep(2, 2);
  EXPECT_THROW(ep.assign(5, 0), CheckError);
  EXPECT_THROW(ep.assign(0, 7), CheckError);
}

TEST(EdgePartitionType, AssignPairSetsBothDirections) {
  const Graph g = square();
  const auto pairs = canonical_pairs(g);
  EdgePartition ep(g.num_edges(), 2);
  for (const EdgePair& pair : pairs) ep.assign_pair(pair, 1);
  EXPECT_TRUE(ep.fully_assigned());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(ep[e], 1u);
}

TEST(CanonicalPairs, SquareCoversEveryDirectedEdgeOnce) {
  const Graph g = square();
  const auto pairs = canonical_pairs(g);
  ASSERT_EQ(pairs.size(), 4u);  // 8 directed edges = 4 undirected pairs
  std::vector<int> seen(g.num_edges(), 0);
  for (const EdgePair& pair : pairs) {
    EXPECT_LE(pair.a, pair.b);
    ASSERT_NE(pair.e1, kNoEdge);
    ASSERT_NE(pair.e2, kNoEdge);
    ++seen[pair.e1];
    ++seen[pair.e2];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(CanonicalPairs, StreamOrderIsAscendingByEndpoints) {
  const Graph g = square();
  const auto pairs = canonical_pairs(g);
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const bool ordered = pairs[i - 1].a < pairs[i].a ||
                         (pairs[i - 1].a == pairs[i].a &&
                          pairs[i - 1].b <= pairs[i].b);
    EXPECT_TRUE(ordered);
  }
}

TEST(CanonicalPairs, AsymmetricEdgeYieldsOneSidedPair) {
  EdgeList el;
  el.add(0, 1);  // one direction only
  const Graph g = Graph::from_edges(el);
  const auto pairs = canonical_pairs(g);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_NE(pairs[0].e1, kNoEdge);
  EXPECT_EQ(pairs[0].e2, kNoEdge);
}

TEST(CanonicalPairs, HighToLowAsymmetricEdgeIsNotDropped) {
  // A directed u->v edge with u > v and no reverse edge is only visible
  // from v through v's in-adjacency; it must still yield a pair.
  EdgeList el;
  el.add(1, 0);
  const Graph g = Graph::from_edges(el);
  const auto pairs = canonical_pairs(g);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 1u);
  EXPECT_EQ(pairs[0].e1, g.out_edge_index(1, 0));
  EXPECT_EQ(pairs[0].e2, kNoEdge);
}

TEST(CanonicalPairs, MixedAsymmetricCoversEveryDirectedEdgeOnce) {
  EdgeList el;
  el.add(2, 0);  // high->low, no reverse, parallel copies
  el.add(2, 0);
  el.add(0, 1);  // low->high, no reverse
  el.add_undirected(1, 2);
  el.add(3, 3);  // self loop
  const Graph g = Graph::from_edges(el);
  const auto pairs = canonical_pairs(g);
  ASSERT_EQ(pairs.size(), 5u);
  std::vector<int> seen(g.num_edges(), 0);
  for (const EdgePair& pair : pairs) {
    EXPECT_LE(pair.a, pair.b);
    ASSERT_NE(pair.e1, kNoEdge);
    ++seen[pair.e1];
    if (pair.e2 != kNoEdge) ++seen[pair.e2];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const bool ordered = pairs[i - 1].a < pairs[i].a ||
                         (pairs[i - 1].a == pairs[i].a &&
                          pairs[i - 1].b <= pairs[i].b);
    EXPECT_TRUE(ordered);
  }
  // The contract MirrorGraph and split_merge rely on: assigning every
  // pair assigns every directed edge.
  EdgePartition ep(g.num_edges(), 2);
  for (const EdgePair& pair : pairs) ep.assign_pair(pair, 0);
  EXPECT_TRUE(ep.fully_assigned());
}

TEST(CanonicalPairs, SelfLoopIsOneSided) {
  EdgeList el;
  el.add(0, 0);
  el.add_undirected(0, 1);
  const Graph g = Graph::from_edges(el);
  const auto pairs = canonical_pairs(g);
  ASSERT_EQ(pairs.size(), 2u);
  std::vector<int> seen(g.num_edges(), 0);
  for (const EdgePair& pair : pairs) {
    ++seen[pair.e1];
    if (pair.e2 != kNoEdge) ++seen[pair.e2];
    if (pair.a == pair.b) {
      EXPECT_EQ(pair.e2, kNoEdge);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(PairCounts, CountsPairsNotDirectedEdges) {
  const Graph g = square();
  const auto pairs = canonical_pairs(g);
  EdgePartition ep(g.num_edges(), 2);
  ep.assign_pair(pairs[0], 0);
  for (std::size_t i = 1; i < pairs.size(); ++i) ep.assign_pair(pairs[i], 1);
  const auto loads = pair_counts(pairs, ep);
  EXPECT_EQ(loads[0], 1u);
  EXPECT_EQ(loads[1], 3u);
}

TEST(ReplicationReportTest, SinglePartMeansOneCopyEach) {
  const Graph g = square();
  EdgePartition ep(g.num_edges(), 1);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) ep.assign(e, 0);
  const auto r = replication_report(g, ep);
  EXPECT_DOUBLE_EQ(r.replication_factor, 1.0);
  EXPECT_DOUBLE_EQ(r.max_copies, 1.0);
}

TEST(ReplicationReportTest, SplitSquareReplicatesBoundary) {
  // Square 0-1-2-3-0; put edges {0-1, 1-2} on part 0 and {2-3, 3-0} on
  // part 1 (both directions each). Vertices 0 and 2 appear on both parts.
  const Graph g = square();
  EdgePartition ep(g.num_edges(), 2);
  for (graph::VertexId v = 0; v < 4; ++v) {
    const auto nbrs = g.out_neighbors(v);
    for (graph::EdgeId i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId a = std::min(v, nbrs[i]);
      const graph::VertexId b = std::max(v, nbrs[i]);
      const bool part0 = (a == 0 && b == 1) || (a == 1 && b == 2);
      ep.assign(g.out_edge_index(v, i), part0 ? 0 : 1);
    }
  }
  const auto r = replication_report(g, ep);
  EXPECT_EQ(r.copies[0], 2u);
  EXPECT_EQ(r.copies[1], 1u);
  EXPECT_EQ(r.copies[2], 2u);
  EXPECT_EQ(r.copies[3], 1u);
  EXPECT_DOUBLE_EQ(r.replication_factor, 1.5);
}

}  // namespace
}  // namespace bpart::vcut
