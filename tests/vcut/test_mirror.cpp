#include "vcut/mirror_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "../partition/test_graphs.hpp"
#include "dist/mirror.hpp"
#include "engine/components.hpp"
#include "engine/pagerank.hpp"
#include "vcut/placers.hpp"
#include "vcut/registry.hpp"
#include "vcut/two_phase.hpp"

namespace bpart::vcut {
namespace {

using graph::EdgeList;
using graph::Graph;
using partition::testing::social_graph;

Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

const Graph& shared_social() {
  static const Graph g = social_graph();
  return g;
}

// Engine results on the trivial single-part partition: the ground truth
// the mirror path must reproduce.
partition::Partition single_part(const Graph& g) {
  partition::Partition parts(g.num_vertices(), 1);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) parts.assign(v, 0);
  return parts;
}

EdgePartition split_square(const Graph& g) {
  // Edges {0-1, 1-2} on part 0, {2-3, 3-0} on part 1.
  EdgePartition ep(g.num_edges(), 2);
  const auto pairs = canonical_pairs(g);
  for (const EdgePair& pair : pairs) {
    const bool part0 = (pair.a == 0 && pair.b == 1) ||
                       (pair.a == 1 && pair.b == 2);
    ep.assign_pair(pair, part0 ? 0 : 1);
  }
  return ep;
}

TEST(MirrorGraphTest, SplitSquareShards) {
  const Graph g = square();
  const auto ep = split_square(g);
  const MirrorGraph mg(g, ep, 17);
  ASSERT_EQ(mg.num_machines(), 2u);
  EXPECT_EQ(mg.num_global(), 4u);
  // Part 0 touches {0,1,2}, part 1 touches {0,2,3}: 6 replicas.
  EXPECT_EQ(mg.num_replicas(), 6u);
  EXPECT_DOUBLE_EQ(mg.replication_factor(), 1.5);
  EXPECT_DOUBLE_EQ(mg.replication_factor(),
                   replication_report(g, ep).replication_factor);
  EXPECT_EQ(mg.shard(0).num_replicas(), 3u);
  EXPECT_EQ(mg.shard(1).num_replicas(), 3u);
  // Each shard holds both directions of its two undirected edges.
  EXPECT_EQ(mg.shard(0).local.num_edges(), 4u);
  EXPECT_EQ(mg.shard(1).local.num_edges(), 4u);
}

TEST(MirrorGraphTest, ExactlyOneMasterPerVertex) {
  const Graph& g = shared_social();
  const auto ep = Hdrf().partition(g, 8);
  const MirrorGraph mg(g, ep, 17);
  std::vector<std::uint32_t> masters(g.num_vertices(), 0);
  std::vector<std::uint32_t> replicas(g.num_vertices(), 0);
  for (MachineId m = 0; m < mg.num_machines(); ++m) {
    const auto& sh = mg.shard(m);
    for (graph::VertexId r = 0; r < sh.num_replicas(); ++r) {
      ++replicas[sh.global_id[r]];
      if (sh.is_master[r]) {
        ++masters[sh.global_id[r]];
        EXPECT_EQ(sh.master_machine[r], m);
      }
    }
  }
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(masters[v], 1u);
    EXPECT_GE(replicas[v], 1u);
  }
}

TEST(MirrorGraphTest, MirrorHoldersMatchReplicaPlacement) {
  const Graph g = square();
  const auto ep = split_square(g);
  const MirrorGraph mg(g, ep, 17);
  // For every master, the holder list must name exactly the other machines
  // with a replica of that vertex.
  for (MachineId m = 0; m < mg.num_machines(); ++m) {
    const auto& sh = mg.shard(m);
    for (graph::VertexId r = 0; r < sh.num_replicas(); ++r) {
      if (!sh.is_master[r]) continue;
      const graph::VertexId v = sh.global_id[r];
      std::uint32_t holders = 0;
      for (std::uint32_t h = sh.mirror_offsets[r]; h < sh.mirror_offsets[r + 1];
           ++h) {
        const MachineId other = sh.mirror_holders[h];
        EXPECT_NE(other, m);
        EXPECT_NE(mg.shard(other).replica_of(v), kNoReplica);
        ++holders;
      }
      std::uint32_t expected = 0;
      for (MachineId o = 0; o < mg.num_machines(); ++o)
        if (o != m && mg.shard(o).replica_of(v) != kNoReplica) ++expected;
      EXPECT_EQ(holders, expected);
    }
  }
}

TEST(MirrorGraphTest, IsolatedVertexGetsAMasterReplica) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.set_num_vertices(3);  // vertex 2 isolated
  const Graph g = Graph::from_edges(el);
  EdgePartition ep(g.num_edges(), 2);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) ep.assign(e, 0);
  const MirrorGraph mg(g, ep, 17);
  std::uint32_t found = 0;
  for (MachineId m = 0; m < mg.num_machines(); ++m) {
    const auto& sh = mg.shard(m);
    const graph::VertexId r = sh.replica_of(2);
    if (r == kNoReplica) continue;
    ++found;
    EXPECT_TRUE(sh.is_master[r]);
    EXPECT_EQ(sh.global_out_degree[r], 0u);
  }
  EXPECT_EQ(found, 1u);
}

TEST(MirrorPageRank, MatchesEngineOnEveryPlacer) {
  const Graph& g = shared_social();
  const auto reference = engine::pagerank(g, single_part(g));
  for (const auto& name : names()) {
    const auto ep = create(name)->partition(g, 8);
    const MirrorGraph mg(g, ep, 17);
    const auto mirror = dist::mirror_pagerank(mg);
    ASSERT_EQ(mirror.rank.size(), reference.rank.size());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_NEAR(mirror.rank[v], reference.rank[v], 1e-10) << name << " " << v;
  }
}

TEST(MirrorPageRank, BitIdenticalAcrossRuntimeThreads) {
  const Graph& g = shared_social();
  const auto ep = Hdrf().partition(g, 8);
  const MirrorGraph mg(g, ep, 17);
  dist::DistOptions one;
  one.threads = 1;
  dist::DistOptions eight;
  eight.threads = 8;
  const auto a = dist::mirror_pagerank(mg, {}, one);
  const auto b = dist::mirror_pagerank(mg, {}, eight);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(a.rank[v], b.rank[v]);
}

TEST(MirrorPageRank, ExecPathMatchesSequential) {
  const Graph& g = shared_social();
  const auto ep = Hdrf().partition(g, 8);
  const MirrorGraph mg(g, ep, 17);
  dist::DistOptions exec_on;
  exec_on.exec.threads = 4;
  const auto seq = dist::mirror_pagerank(mg);
  const auto par = dist::mirror_pagerank(mg, {}, exec_on);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(seq.rank[v], par.rank[v]);
}

TEST(MirrorComponents, MatchesEngineLabelsExactly) {
  const Graph& g = shared_social();
  const auto reference = engine::connected_components(g, single_part(g));
  const auto ep = TwoPhaseStreaming().partition(g, 8);
  const MirrorGraph mg(g, ep, 17);
  const auto mirror = dist::mirror_components(mg);
  EXPECT_EQ(mirror.num_components, reference.num_components);
  ASSERT_EQ(mirror.label.size(), reference.label.size());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(mirror.label[v], reference.label[v]);
}

TEST(MirrorComponents, DisconnectedGraph) {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(2, 3);
  el.set_num_vertices(5);  // vertex 4 isolated
  const Graph g = Graph::from_edges(el);
  EdgePartition ep(g.num_edges(), 2);
  const auto pairs = canonical_pairs(g);
  ep.assign_pair(pairs[0], 0);
  ep.assign_pair(pairs[1], 1);
  const MirrorGraph mg(g, ep, 17);
  const auto result = dist::mirror_components(mg);
  EXPECT_EQ(result.num_components, 3u);
  EXPECT_EQ(result.label[0], 0u);
  EXPECT_EQ(result.label[1], 0u);
  EXPECT_EQ(result.label[2], 2u);
  EXPECT_EQ(result.label[3], 2u);
  EXPECT_EQ(result.label[4], 4u);
}

}  // namespace
}  // namespace bpart::vcut
