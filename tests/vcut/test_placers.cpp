#include "vcut/placers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <numeric>
#include <string>

#include "../partition/test_graphs.hpp"
#include "util/check.hpp"
#include "vcut/registry.hpp"
#include "vcut/two_phase.hpp"

namespace bpart::vcut {
namespace {

using graph::EdgeList;
using graph::Graph;
using partition::testing::social_graph;

Graph square() {
  EdgeList el;
  el.add_undirected(0, 1);
  el.add_undirected(1, 2);
  el.add_undirected(2, 3);
  el.add_undirected(3, 0);
  return Graph::from_edges(el);
}

const Graph& shared_social() {
  static const Graph g = social_graph();
  return g;
}

using Placer = std::string;
class EdgePartitionerProperty : public ::testing::TestWithParam<Placer> {};

TEST_P(EdgePartitionerProperty, ValidAssignment) {
  const Graph& g = shared_social();
  const auto ep = create(GetParam())->partition(g, 8);
  EXPECT_TRUE(ep.fully_assigned());
  const auto counts = ep.edge_counts();
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
            g.num_edges());
}

TEST_P(EdgePartitionerProperty, SymmetricPairsShareParts) {
  // Both directions of an undirected edge must land on the same part.
  const Graph& g = shared_social();
  const auto ep = create(GetParam())->partition(g, 8);
  for (graph::VertexId v = 0; v < g.num_vertices(); v += 7) {
    const auto nbrs = g.out_neighbors(v);
    for (graph::EdgeId i = 0; i < nbrs.size(); ++i) {
      const graph::VertexId u = nbrs[i];
      const auto rev = g.out_neighbors(u);
      const auto it = std::lower_bound(rev.begin(), rev.end(), v);
      ASSERT_TRUE(it != rev.end() && *it == v);
      const graph::EdgeId rev_idx =
          g.out_edge_index(u, static_cast<graph::EdgeId>(it - rev.begin()));
      ASSERT_EQ(ep[g.out_edge_index(v, i)], ep[rev_idx]);
    }
  }
}

TEST_P(EdgePartitionerProperty, ReplicationWithinBounds) {
  const Graph& g = shared_social();
  const auto ep = create(GetParam())->partition(g, 8);
  const auto r = replication_report(g, ep);
  EXPECT_GE(r.replication_factor, 1.0);
  EXPECT_LE(r.replication_factor, 8.0);
  EXPECT_LE(r.max_copies, 8.0);
}

INSTANTIATE_TEST_SUITE_P(AllPlacers, EdgePartitionerProperty,
                         ::testing::ValuesIn(names()),
                         [](const ::testing::TestParamInfo<Placer>& info) {
                           std::string n = info.param;
                           for (char& c : n)
                             if (c == '-') c = '_';
                           if (std::isdigit(static_cast<unsigned char>(n[0])))
                             n.insert(n.begin(), 'p');
                           return n;
                         });

TEST(VertexCutComparison, SmartPlacersBeatRandomOnReplication) {
  // The published result this subsystem must reproduce: on power-law
  // graphs DBH, HDRF and 2PS replicate far less than random placement.
  const Graph& g = shared_social();
  const auto random =
      replication_report(g, RandomEdgePlacement(17).partition(g, 8));
  const auto dbh =
      replication_report(g, DegreeBasedHashing(17).partition(g, 8));
  const auto hdrf = replication_report(g, Hdrf().partition(g, 8));
  const auto two_phase =
      replication_report(g, TwoPhaseStreaming().partition(g, 8));
  EXPECT_LT(dbh.replication_factor, random.replication_factor);
  EXPECT_LT(hdrf.replication_factor, random.replication_factor);
  EXPECT_LT(hdrf.replication_factor, 0.8 * random.replication_factor);
  EXPECT_LT(two_phase.replication_factor, random.replication_factor);
}

TEST(VertexCutComparison, HdrfBalancesEdges) {
  const Graph& g = shared_social();
  const auto hdrf = replication_report(g, Hdrf().partition(g, 8));
  EXPECT_LT(hdrf.edge_bias, 0.2);
}

TEST(Hdrf, RejectsTooManyParts) {
  const Graph g = square();
  EXPECT_THROW(Hdrf().partition(g, 65), CheckError);
}

TEST(RandomEdgePlacement, SeedControlsTheAssignment) {
  const Graph& g = shared_social();
  const auto a = RandomEdgePlacement(17).partition(g, 8);
  const auto b = RandomEdgePlacement(17).partition(g, 8);
  const auto c = RandomEdgePlacement(18).partition(g, 8);
  bool differs = false;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(a[e], b[e]);
    differs = differs || a[e] != c[e];
  }
  EXPECT_TRUE(differs);
}

TEST(BufferedHdrf, BitIdenticalAcrossThreadCounts) {
  const Graph& g = shared_social();
  BufferedHdrfConfig cfg;
  cfg.batch_size = 1024;
  cfg.threads = 1;
  const auto one = BufferedHdrf(cfg).partition(g, 8);
  cfg.threads = 2;
  const auto two = BufferedHdrf(cfg).partition(g, 8);
  cfg.threads = 8;
  const auto eight = BufferedHdrf(cfg).partition(g, 8);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(one[e], two[e]);
    ASSERT_EQ(one[e], eight[e]);
  }
}

TEST(BufferedHdrf, RespectsCapacityCap) {
  const Graph& g = shared_social();
  BufferedHdrfConfig cfg;
  cfg.batch_size = 4096;
  cfg.threads = 4;
  const auto ep = BufferedHdrf(cfg).partition(g, 8);
  const auto pairs = canonical_pairs(g);
  const std::uint64_t capacity = (pairs.size() + 7) / 8;
  const auto cap = std::max<std::uint64_t>(
      capacity,
      static_cast<std::uint64_t>(cfg.capacity_slack *
                                 static_cast<double>(capacity)));
  for (const auto load : pair_counts(pairs, ep)) EXPECT_LE(load, cap);
}

TEST(TwoPhaseStreaming, RespectsCapacityCap) {
  const Graph& g = shared_social();
  TwoPhaseConfig cfg;
  const auto ep = TwoPhaseStreaming(cfg).partition(g, 8);
  const auto pairs = canonical_pairs(g);
  const std::uint64_t capacity = (pairs.size() + 7) / 8;
  const auto cap = std::max<std::uint64_t>(
      capacity,
      static_cast<std::uint64_t>(cfg.capacity_slack *
                                 static_cast<double>(capacity)));
  for (const auto load : pair_counts(pairs, ep)) EXPECT_LE(load, cap);
}

TEST(Registry, EnumeratesTheFamily) {
  const auto& family = names();
  ASSERT_EQ(family.size(), 5u);
  for (const auto& name : family) EXPECT_EQ(create(name)->name(), name);
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(create("greedy"), std::out_of_range);
}

}  // namespace
}  // namespace bpart::vcut
