#include "vcut/split_merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "../partition/test_graphs.hpp"
#include "vcut/placers.hpp"

namespace bpart::vcut {
namespace {

using graph::Graph;
using partition::testing::social_graph;

const Graph& shared_social() {
  static const Graph g = social_graph();
  return g;
}

std::uint64_t cap_of(std::uint64_t num_pairs, PartId k, double slack) {
  const std::uint64_t capacity = (num_pairs + k - 1) / k;
  return std::max<std::uint64_t>(
      capacity,
      static_cast<std::uint64_t>(slack * static_cast<double>(capacity)));
}

TEST(KmMatch, PicksTheMaximumWeightPermutation) {
  // Row i's best column is (i + 1) % 3; the identity is strictly worse.
  const std::vector<std::vector<double>> w = {
      {1.0, 9.0, 0.0}, {0.0, 1.0, 9.0}, {9.0, 0.0, 1.0}};
  const auto col = km_match(w);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_EQ(col[0], 1u);
  EXPECT_EQ(col[1], 2u);
  EXPECT_EQ(col[2], 0u);
}

TEST(KmMatch, AvoidsForbiddenCellsWhenPossible) {
  constexpr double kForbidden = -1e15;
  const std::vector<std::vector<double>> w = {{kForbidden, 2.0},
                                              {3.0, kForbidden}};
  const auto col = km_match(w);
  EXPECT_EQ(col[0], 1u);
  EXPECT_EQ(col[1], 0u);
}

TEST(SplitMerge, BalancedInputPassesThrough) {
  const Graph& g = shared_social();
  const auto ep = Hdrf().partition(g, 8);
  const auto result = split_merge_rebalance(g, ep);
  EXPECT_EQ(result.fragments, 0u);
  EXPECT_EQ(result.moved_pairs, 0u);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(result.partition[e], ep[e]);
}

TEST(SplitMerge, RepairsAFullySkewedPartition) {
  // Worst case: every edge on part 0 of 4. The pass must shed ~3/4 of the
  // pairs and still land under the slack cap.
  const Graph& g = shared_social();
  const auto pairs = canonical_pairs(g);
  EdgePartition ep(g.num_edges(), 4);
  for (const EdgePair& pair : pairs) ep.assign_pair(pair, 0);

  SplitMergeConfig cfg;
  const auto result = split_merge_rebalance(g, ep, cfg);
  EXPECT_GT(result.fragments, 0u);
  EXPECT_GT(result.moved_pairs, 0u);
  EXPECT_TRUE(result.partition.fully_assigned());

  const auto loads = pair_counts(pairs, result.partition);
  const auto cap = cap_of(pairs.size(), 4, cfg.capacity_slack);
  for (const auto load : loads) EXPECT_LE(load, cap);
  EXPECT_EQ(result.max_load,
            *std::max_element(loads.begin(), loads.end()));
  EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
            pairs.size());
}

TEST(SplitMerge, KeepsSymmetricPairsTogether) {
  const Graph& g = shared_social();
  const auto pairs = canonical_pairs(g);
  EdgePartition ep(g.num_edges(), 8);
  // Mildly skewed: everything on two parts.
  for (std::size_t i = 0; i < pairs.size(); ++i)
    ep.assign_pair(pairs[i], i % 2 == 0 ? 0 : 1);
  const auto result = split_merge_rebalance(g, ep);
  for (const EdgePair& pair : pairs) {
    if (pair.e2 == kNoEdge) continue;
    EXPECT_EQ(result.partition[pair.e1], result.partition[pair.e2]);
  }
  const auto loads = pair_counts(pairs, result.partition);
  const auto cap = cap_of(pairs.size(), 8, SplitMergeConfig{}.capacity_slack);
  for (const auto load : loads) EXPECT_LE(load, cap);
}

TEST(SplitMerge, MovesLittleWhenSkewIsSmall) {
  // One part 30% over capacity: the repair must not reshuffle the world.
  const Graph& g = shared_social();
  const auto pairs = canonical_pairs(g);
  EdgePartition ep(g.num_edges(), 4);
  const std::uint64_t capacity = (pairs.size() + 3) / 4;
  const std::uint64_t heavy = capacity + capacity * 3 / 10;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const PartId p =
        i < heavy ? 0 : static_cast<PartId>(1 + (i - heavy) % 3);
    ep.assign_pair(pairs[i], p);
  }
  const auto result = split_merge_rebalance(g, ep);
  // Only the overflow (≈ 0.3 * capacity, minus the slack headroom) moves.
  EXPECT_LE(result.moved_pairs, capacity / 2);
  EXPECT_LE(result.max_load, cap_of(pairs.size(), 4, 1.05));
}

}  // namespace
}  // namespace bpart::vcut
