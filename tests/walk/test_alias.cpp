#include "walk/alias.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace bpart::walk {
namespace {

TEST(AliasTable, UniformWeights) {
  const std::vector<double> w{1, 1, 1, 1};
  AliasTable t(w);
  Xoshiro256 rng(1);
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kN / 4, kN / 4 / 5);
}

TEST(AliasTable, SkewedWeightsMatchProportions) {
  const std::vector<double> w{1, 2, 7};
  AliasTable t(w);
  Xoshiro256 rng(2);
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.012);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.015);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w{0, 1, 0, 1};
  AliasTable t(w);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, SingleEntry) {
  const std::vector<double> w{5.0};
  AliasTable t(w);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ProbabilityAccessorNormalizes) {
  const std::vector<double> w{2, 6};
  AliasTable t(w);
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
  EXPECT_THROW((void)t.probability(5), CheckError);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{0, 0}), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{1, -1}), CheckError);
}

TEST(AliasTable, LargeHeavyTailStillExact) {
  // Zipf-ish weights over 1000 entries; verify the top entry's empirical
  // frequency against its exact probability.
  std::vector<double> w(1000);
  double total = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 / static_cast<double>(i + 1);
    total += w[i];
  }
  AliasTable t(w);
  Xoshiro256 rng(5);
  int hits = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i)
    if (t.sample(rng) == 0) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(kN), 1.0 / total, 0.01);
}

}  // namespace
}  // namespace bpart::walk
