#include "walk/alias.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "exec/scheduler.hpp"
#include "util/check.hpp"

namespace bpart::walk {
namespace {

/// Bit-exactness witness: identical tables draw identical index sequences
/// from identical RNG streams (sample() consumes two draws per call, so
/// any prob_/alias_ difference surfaces within a few thousand draws).
void expect_same_table(const AliasTable& a, const AliasTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a.probability(i), b.probability(i)) << "entry " << i;
  Xoshiro256 ra(17), rb(17);
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(a.sample(ra), b.sample(rb));
}

TEST(AliasTable, UniformWeights) {
  const std::vector<double> w{1, 1, 1, 1};
  AliasTable t(w);
  Xoshiro256 rng(1);
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kN / 4, kN / 4 / 5);
}

TEST(AliasTable, SkewedWeightsMatchProportions) {
  const std::vector<double> w{1, 2, 7};
  AliasTable t(w);
  Xoshiro256 rng(2);
  std::vector<int> counts(3, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[t.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.2, 0.012);
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.015);
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  const std::vector<double> w{0, 1, 0, 1};
  AliasTable t(w);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, SingleEntry) {
  const std::vector<double> w{5.0};
  AliasTable t(w);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
}

TEST(AliasTable, ProbabilityAccessorNormalizes) {
  const std::vector<double> w{2, 6};
  AliasTable t(w);
  EXPECT_DOUBLE_EQ(t.probability(0), 0.25);
  EXPECT_DOUBLE_EQ(t.probability(1), 0.75);
  EXPECT_THROW((void)t.probability(5), CheckError);
}

TEST(AliasTable, RejectsInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{0, 0}), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{1, -1}), CheckError);
}

TEST(AliasTable, LargeHeavyTailStillExact) {
  // Zipf-ish weights over 1000 entries; verify the top entry's empirical
  // frequency against its exact probability.
  std::vector<double> w(1000);
  double total = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 / static_cast<double>(i + 1);
    total += w[i];
  }
  AliasTable t(w);
  Xoshiro256 rng(5);
  int hits = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i)
    if (t.sample(rng) == 0) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(kN), 1.0 / total, 0.01);
}

TEST(AliasTable, ParallelConstructionBitExact) {
  // Zipf-ish weights with zero rows sprinkled in; the parallel classify
  // pass must reproduce the sequential stacks at every chunk size and
  // thread count.
  std::vector<double> w(1537);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = (i % 7 == 3) ? 0.0 : 1.0 / static_cast<double>(i + 1);
  const AliasTable seq(w);
  for (const unsigned threads : {1u, 2u, 4u}) {
    exec::Executor ex(threads);
    for (const std::uint32_t chunk : {1u, 13u, 256u, 100000u}) {
      const AliasTable par(w, ex, chunk);
      expect_same_table(par, seq);
    }
  }
}

TEST(AliasTable, ParallelZeroWeightNeverSampled) {
  const std::vector<double> w{0, 1, 0, 1};
  exec::Executor ex(2);
  const AliasTable t(w, ex, 1);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t s = t.sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasTable, ParallelSingleEntry) {
  const std::vector<double> w{5.0};
  exec::Executor ex(4);
  const AliasTable t(w, ex, 64);
  Xoshiro256 rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(t.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(t.probability(0), 1.0);
}

TEST(AliasTable, ParallelRejectsInvalidWeights) {
  exec::Executor ex(2);
  EXPECT_THROW(AliasTable(std::vector<double>{}, ex, 4), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{0, 0}, ex, 4), CheckError);
  EXPECT_THROW(AliasTable(std::vector<double>{1, -1}, ex, 4), CheckError);
}

TEST(AliasTable, SampleAcceptsCounterRng) {
  const std::vector<double> w{1, 2, 7};
  const AliasTable t(w);
  // Keyed streams drive the same sampler; rough distribution check.
  std::vector<int> counts(3, 0);
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    CounterRng rng(9, static_cast<std::uint64_t>(i), 0);
    ++counts[t.sample(rng)];
  }
  EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.7, 0.02);
}

}  // namespace
}  // namespace bpart::walk
