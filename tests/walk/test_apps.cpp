#include "walk/apps.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"

namespace bpart::walk {
namespace {

using graph::EdgeList;
using graph::Graph;
using partition::Partition;

Graph social() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 2048;
  cfg.avg_degree = 12;
  cfg.num_communities = 16;
  cfg.seed = 13;
  return Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

Partition one_part(const Graph& g) {
  return partition::ChunkV().partition(g, 1);
}

/// Every vertex has degree >= 2k: no dead ends, so fixed-length walks take
/// exactly their configured number of steps.
Graph no_dead_ends() {
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 2048;
  cfg.k = 4;
  cfg.beta = 0.2;
  cfg.seed = 13;
  return Graph::from_edges(graph::watts_strogatz(cfg));
}

TEST(WalkApps, FactoryKnowsAllPaperApps) {
  for (const auto& name : paper_walk_apps()) {
    const auto app = create_walk_app(name);
    EXPECT_EQ(app->name(), name);
  }
  EXPECT_EQ(create_walk_app("simple-rw")->name(), "simple-rw");
  EXPECT_THROW(create_walk_app("metropolis"), std::out_of_range);
}

TEST(WalkApps, PaperListHasFiveAlgorithms) {
  EXPECT_EQ(paper_walk_apps().size(), 5u);
}

TEST(Ppr, GeometricLengths) {
  // With stop probability 0.1 the expected number of steps is ~9 (the
  // terminating attempt costs no step).
  const Graph g = no_dead_ends();
  WalkConfig cfg;
  cfg.seed = 5;
  const auto report =
      run_walks(g, one_part(g), PersonalizedPageRank(0.1), cfg);
  const double mean_steps = static_cast<double>(report.total_steps) /
                            static_cast<double>(g.num_vertices());
  EXPECT_NEAR(mean_steps, 9.0, 1.0);
}

TEST(Ppr, HigherStopProbShortensWalks) {
  const Graph g = no_dead_ends();
  const auto slow = run_walks(g, one_part(g), PersonalizedPageRank(0.05), {});
  const auto fast = run_walks(g, one_part(g), PersonalizedPageRank(0.5), {});
  EXPECT_GT(slow.total_steps, 2 * fast.total_steps);
}

TEST(Rwj, JumpsEscapeDeadEnds) {
  // Directed path: the simple walk dies at the sink, RWJ teleports on.
  EdgeList el;
  el.add(0, 1);
  const Graph g = Graph::from_edges(el);
  WalkConfig cfg;
  cfg.seed = 3;
  // jump_prob 1.0: every step is a teleport, dead ends never bite.
  const auto report =
      run_walks(g, one_part(g), RandomWalkWithJump(1.0, 6), cfg);
  EXPECT_EQ(report.total_steps, 2u * 6u);
}

TEST(Rwj, FixedLength) {
  const Graph g = no_dead_ends();
  const auto report =
      run_walks(g, one_part(g), RandomWalkWithJump(0.2, 4), {});
  EXPECT_EQ(report.total_steps,
            static_cast<std::uint64_t>(g.num_vertices()) * 4u);
}

TEST(Rwd, AvoidsImmediateBacktrackMostly) {
  // On a ring of degree 2, a uniform walk backtracks half the time; RWD's
  // retry makes backtracks rare.
  EdgeList el;
  for (graph::VertexId v = 0; v < 64; ++v) el.add_undirected(v, (v + 1) % 64);
  const Graph g = Graph::from_edges(el);
  WalkConfig cfg;
  cfg.record_paths = true;
  cfg.seed = 9;
  const auto report = run_walks(g, one_part(g), RandomWalkWithDomination(20),
                                cfg);
  std::uint64_t backtracks = 0, moves = 0;
  for (const auto& path : report.paths) {
    for (std::size_t s = 2; s < path.size(); ++s) {
      ++moves;
      if (path[s] == path[s - 2]) ++backtracks;
    }
  }
  // Uniform would backtrack ~50%; two retries push it to ~12.5%.
  EXPECT_LT(static_cast<double>(backtracks) / static_cast<double>(moves),
            0.25);
}

TEST(DeepWalkApp, ProducesFullLengthCorpus) {
  const Graph g = no_dead_ends();
  WalkConfig cfg;
  cfg.record_paths = true;
  const auto report = run_walks(g, one_part(g), DeepWalk(10), cfg);
  for (const auto& path : report.paths) EXPECT_EQ(path.size(), 11u);
}

TEST(Node2Vec, LowPDiscouragesReturning) {
  // p huge -> returning to the previous vertex is cheap to refuse; p tiny
  // -> walks return constantly. Compare return rates.
  const Graph g = no_dead_ends();
  WalkConfig cfg;
  cfg.record_paths = true;
  cfg.seed = 21;
  auto return_rate = [&](double p, double q) {
    const auto report = run_walks(g, one_part(g), Node2Vec(p, q, 8), cfg);
    std::uint64_t returns = 0, moves = 0;
    for (const auto& path : report.paths)
      for (std::size_t s = 2; s < path.size(); ++s) {
        ++moves;
        if (path[s] == path[s - 2]) ++returns;
      }
    return static_cast<double>(returns) / static_cast<double>(moves);
  };
  EXPECT_GT(return_rate(0.1, 1.0), 3 * return_rate(10.0, 1.0));
}

TEST(Node2Vec, HighQKeepsWalksLocal) {
  // q >> 1 penalizes leaving the previous vertex's neighborhood, so each
  // walk revisits vertices more and covers fewer distinct ones than with
  // q << 1 (which pushes outward, DFS-like).
  const Graph g = no_dead_ends();
  WalkConfig cfg;
  cfg.seed = 22;
  cfg.record_paths = true;
  auto mean_distinct_per_walk = [&](double q) {
    const auto report = run_walks(g, one_part(g), Node2Vec(1.0, q, 12), cfg);
    std::uint64_t distinct_total = 0;
    for (const auto& path : report.paths) {
      std::vector<graph::VertexId> sorted(path.begin(), path.end());
      std::sort(sorted.begin(), sorted.end());
      distinct_total += static_cast<std::uint64_t>(
          std::unique(sorted.begin(), sorted.end()) - sorted.begin());
    }
    return static_cast<double>(distinct_total) /
           static_cast<double>(report.paths.size());
  };
  EXPECT_LT(mean_distinct_per_walk(8.0), mean_distinct_per_walk(0.125));
}

TEST(Node2Vec, RejectsBadParameters) {
  EXPECT_THROW(Node2Vec(0.0, 1.0), CheckError);
  EXPECT_THROW(Node2Vec(1.0, -2.0), CheckError);
}

TEST(AllApps, RunCleanlyOnSocialGraphWithManyParts) {
  const Graph g = social();
  const Partition p = partition::ChunkV().partition(g, 8);
  for (const auto& name : paper_walk_apps()) {
    const auto app = create_walk_app(name);
    const auto report = run_walks(g, p, *app, {});
    EXPECT_GT(report.total_steps, 0u) << name;
    EXPECT_GT(report.message_walks, 0u) << name;
    EXPECT_EQ(report.message_walks, report.run.total_messages()) << name;
  }
}

}  // namespace
}  // namespace bpart::walk
