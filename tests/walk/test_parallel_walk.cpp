// The parallel walk engine's determinism contract (DESIGN.md §13): under
// the exec core, walk outputs are bitwise identical at every thread count
// and chunk size, the legacy sequential path is bit-identical to the
// pre-parallel engine, and the counter-based RNG streams unify walker
// trajectories across the simulated, threaded and dist engines.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/registry.hpp"
#include "walk/apps.hpp"
#include "walk/dist_walk.hpp"
#include "walk/ppr_estimate.hpp"
#include "walk/threaded_walk.hpp"
#include "util/rng.hpp"
#include "walk/walk_engine.hpp"
#include "walk/weighted_walk.hpp"

namespace bpart::walk {
namespace {

class ParallelWalk : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph::WattsStrogatzConfig cfg;
    cfg.num_vertices = 2048;
    cfg.k = 6;
    cfg.beta = 0.2;
    cfg.seed = 7;
    graph_ = new graph::Graph(
        graph::Graph::from_edges(graph::watts_strogatz(cfg)));
    parts_ = new partition::Partition(
        partition::create("bpart")->partition(*graph_, 4));
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete parts_;
    graph_ = nullptr;
    parts_ = nullptr;
  }

  static graph::Graph* graph_;
  static partition::Partition* parts_;
};

graph::Graph* ParallelWalk::graph_ = nullptr;
partition::Partition* ParallelWalk::parts_ = nullptr;

void expect_identical(const WalkReport& got, const WalkReport& base,
                      unsigned threads) {
  EXPECT_EQ(got.total_steps, base.total_steps) << threads << " threads";
  EXPECT_EQ(got.message_walks, base.message_walks) << threads << " threads";
  EXPECT_EQ(got.visits, base.visits) << threads << " threads";
  EXPECT_EQ(got.paths, base.paths) << threads << " threads";
  // The BSP accounting replays identically too.
  ASSERT_EQ(got.run.iterations.size(), base.run.iterations.size());
  EXPECT_EQ(got.run.total_work(), base.run.total_work());
  EXPECT_EQ(got.run.total_messages(), base.run.total_messages());
}

TEST_F(ParallelWalk, PprBitIdenticalAcrossThreadCounts) {
  WalkConfig cfg;
  cfg.exec.threads = 1;
  const auto base =
      run_walks(*graph_, *parts_, PersonalizedPageRank(0.1), cfg);
  for (const unsigned threads : {2u, 4u, 8u}) {
    cfg.exec.threads = threads;
    const auto got =
        run_walks(*graph_, *parts_, PersonalizedPageRank(0.1), cfg);
    expect_identical(got, base, threads);
  }
}

TEST_F(ParallelWalk, Node2VecPathsBitIdenticalAcrossThreadCounts) {
  // node2vec is the hardest case: second-order state plus a
  // variable-length rejection loop (up to 129 draws per step) — the keyed
  // streams must absorb all of it. record_paths makes the check per-step.
  WalkConfig cfg;
  cfg.record_paths = true;
  cfg.exec.threads = 1;
  const Node2Vec app(2.0, 0.5, 10);
  const auto base = run_walks(*graph_, *parts_, app, cfg);
  for (const unsigned threads : {2u, 8u}) {
    cfg.exec.threads = threads;
    const auto got = run_walks(*graph_, *parts_, app, cfg);
    expect_identical(got, base, threads);
  }
}

TEST_F(ParallelWalk, ChunkSizeDoesNotChangeOutputs) {
  WalkConfig cfg;
  cfg.exec.threads = 2;
  const auto base = run_walks(*graph_, *parts_, DeepWalk(10), cfg);
  for (const std::uint32_t chunk : {64u, 1000u, 1u << 20}) {
    cfg.exec.chunk_edges = chunk;
    const auto got = run_walks(*graph_, *parts_, DeepWalk(10), cfg);
    expect_identical(got, base, chunk);
  }
}

TEST_F(ParallelWalk, EnvRoutesToExecPath) {
  WalkConfig cfg;
  cfg.exec.threads = 2;
  const auto explicit_cfg =
      run_walks(*graph_, *parts_, PersonalizedPageRank(0.1), cfg);

  const char* saved = std::getenv("BPART_EXEC_THREADS");
  const std::string saved_value = saved != nullptr ? saved : "";
  ASSERT_EQ(setenv("BPART_EXEC_THREADS", "2", 1), 0);
  const auto via_env =
      run_walks(*graph_, *parts_, PersonalizedPageRank(0.1), WalkConfig{});
  if (saved != nullptr) {
    ASSERT_EQ(setenv("BPART_EXEC_THREADS", saved_value.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("BPART_EXEC_THREADS"), 0);
  }

  expect_identical(via_env, explicit_cfg, 2);
}

TEST_F(ParallelWalk, LegacySequentialPathConsumesOneSharedStream) {
  // Replay the pre-parallel engine by hand: one Xoshiro256(seed) stream
  // consumed in walker order, one bounded(degree) draw per step attempt.
  // Guards the bit-identity promise of the unset-exec default. (Under
  // $BPART_EXEC_THREADS the default cfg routes to the exec path, where the
  // shared stream is intentionally not used.)
  if (std::getenv("BPART_EXEC_THREADS") != nullptr)
    GTEST_SKIP() << "BPART_EXEC_THREADS routes the default away from legacy";

  constexpr unsigned kLength = 4;
  WalkConfig cfg;
  cfg.seed = 99;
  const auto got = run_walks(*graph_, partition::ChunkV().partition(*graph_, 1),
                             SimpleRandomWalk(kLength), cfg);

  const graph::Graph& g = *graph_;
  std::vector<std::uint64_t> visits(g.num_vertices(), 0);
  std::uint64_t steps = 0;
  Xoshiro256 rng(cfg.seed);
  // k = 1: every walker runs to completion inside iteration one, in walker
  // (= vertex) order, exactly length draws each (no dead ends here).
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    graph::VertexId at = v;
    ++visits[at];
    for (unsigned s = 0; s < kLength; ++s) {
      at = g.out_neighbor(at, rng.bounded(g.out_degree(at)));
      ++visits[at];
      ++steps;
    }
  }
  EXPECT_EQ(got.total_steps, steps);
  EXPECT_EQ(got.visits, visits);
}

TEST_F(ParallelWalk, KeyedStreamsUnifyAllThreeEngines) {
  // The same (seed, walker, step) keys drive the exec-core simulated
  // engine, the threaded engine and the dist engine: identical step AND
  // message-walk totals, not just statistics.
  ThreadedWalkConfig tcfg;
  tcfg.length = 8;
  tcfg.walks_per_vertex = 2;
  tcfg.seed = 21;
  const auto threaded = run_simple_walks_threaded(*graph_, *parts_, tcfg);
  const auto dist = run_simple_walks_dist(*graph_, *parts_, tcfg);

  WalkConfig cfg;
  cfg.walks_per_vertex = 2;
  cfg.seed = 21;
  cfg.exec.threads = 2;
  const auto sim = run_walks(*graph_, *parts_, SimpleRandomWalk(8), cfg);

  EXPECT_EQ(sim.total_steps, threaded.total_steps);
  EXPECT_EQ(sim.message_walks, threaded.message_walks);
  EXPECT_EQ(sim.total_steps, dist.total_steps);
  EXPECT_EQ(sim.message_walks, dist.message_walks);
}

TEST_F(ParallelWalk, ThreadedStepsIndependentOfMachineCount) {
  // Seed-routing regression: the old per-machine jump streams made walker
  // trajectories depend on which machine hosted them, so step totals moved
  // with the partition count. Counter streams make the trajectory a pure
  // function of (seed, walker, step): only the crossing counts may differ.
  ThreadedWalkConfig cfg;
  cfg.length = 8;
  cfg.seed = 13;
  std::uint64_t base_steps = 0;
  for (const unsigned k : {1u, 2u, 5u}) {
    const auto r = run_simple_walks_threaded(
        *graph_, partition::ChunkV().partition(*graph_, k), cfg);
    if (k == 1) {
      base_steps = r.total_steps;
    } else {
      EXPECT_EQ(r.total_steps, base_steps) << k << " machines";
    }
  }
}

TEST_F(ParallelWalk, PprEstimateDeterministicAcrossThreads) {
  PprConfig cfg;
  cfg.num_walks = 4000;
  cfg.exec.threads = 1;
  const auto base = estimate_ppr(*graph_, *parts_, /*source=*/5, cfg);
  cfg.exec.threads = 4;
  const auto got = estimate_ppr(*graph_, *parts_, 5, cfg);
  EXPECT_EQ(got.total_visits, base.total_visits);
  ASSERT_EQ(got.top.size(), base.top.size());
  for (std::size_t i = 0; i < got.top.size(); ++i) {
    EXPECT_EQ(got.top[i].vertex, base.top[i].vertex);
    EXPECT_DOUBLE_EQ(got.top[i].score, base.top[i].score);
  }
}

TEST(StepRngBatch, WithFirstDrawReplaysTheKeyedStream) {
  // The SIMD-batched hot loop hands each walker step a pre-computed stream
  // head via with_first_draw; the resulting draw sequence must be the exact
  // sequence the three-argument (seed, walker, step) constructor produces,
  // including the rare multi-draw steps that run past the head.
  constexpr std::size_t kBatch = 4;
  std::uint64_t draw[kBatch];
  std::uint64_t state[kBatch];
  CounterRng::first_draws(123, 5, 77, kBatch, draw, state);
  for (std::size_t j = 0; j < kBatch; ++j) {
    StepRng batched = StepRng::with_first_draw(draw[j], state[j]);
    StepRng keyed(123, 5, 77 + j);
    for (int i = 0; i < 32; ++i)
      ASSERT_EQ(batched.next(), keyed.next()) << "slot " << j << " draw " << i;
  }
}

TEST_F(ParallelWalk, WeightedWalkParallelTablesMatchSequential) {
  WeightedWalkConfig seq_cfg;
  const WeightedRandomWalk seq_app(*graph_, seq_cfg);
  WeightedWalkConfig par_cfg;
  par_cfg.exec.threads = 3;
  par_cfg.exec.chunk_edges = 128;
  const WeightedRandomWalk par_app(*graph_, par_cfg);
  for (graph::VertexId v = 0; v < graph_->num_vertices(); ++v)
    for (graph::EdgeId k = 0; k < graph_->out_degree(v); ++k)
      ASSERT_EQ(par_app.transition_probability(v, k),
                seq_app.transition_probability(v, k))
          << "vertex " << v << " edge " << k;
}

}  // namespace
}  // namespace bpart::walk
