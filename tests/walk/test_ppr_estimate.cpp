#include "walk/ppr_estimate.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "util/check.hpp"

namespace bpart::walk {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph lollipop() {
  // Clique {0..4} plus a path 4-5-6-7: PPR from 0 concentrates in the
  // clique and decays down the path.
  EdgeList el;
  for (graph::VertexId a = 0; a < 5; ++a)
    for (graph::VertexId b = a + 1; b < 5; ++b) el.add_undirected(a, b);
  el.add_undirected(4, 5);
  el.add_undirected(5, 6);
  el.add_undirected(6, 7);
  return Graph::from_edges(el);
}

TEST(ExactPpr, SumsToOne) {
  const Graph g = lollipop();
  const auto pi = exact_ppr(g, 0, 0.15);
  double total = 0;
  for (double x : pi) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ExactPpr, SourceHasHighestScore) {
  const Graph g = lollipop();
  const auto pi = exact_ppr(g, 0, 0.15);
  EXPECT_EQ(std::max_element(pi.begin(), pi.end()) - pi.begin(), 0);
}

TEST(ExactPpr, DecaysAlongThePath) {
  const Graph g = lollipop();
  const auto pi = exact_ppr(g, 0, 0.15);
  EXPECT_GT(pi[5], pi[6]);
  EXPECT_GT(pi[6], pi[7]);
}

TEST(EstimatePpr, MatchesExactOnSmallGraph) {
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  PprConfig cfg;
  cfg.num_walks = 200000;
  cfg.top_k = 8;
  cfg.seed = 11;
  const auto est = estimate_ppr(g, parts, 0, cfg);
  const auto exact = exact_ppr(g, 0, cfg.stop_prob);

  ASSERT_EQ(est.top.size(), 8u);
  for (const auto& entry : est.top)
    EXPECT_NEAR(entry.score, exact[entry.vertex], 0.01)
        << "vertex " << entry.vertex;
}

TEST(EstimatePpr, TopListSortedDescending) {
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  const auto est = estimate_ppr(g, parts, 0, {.num_walks = 20000});
  for (std::size_t i = 1; i < est.top.size(); ++i)
    EXPECT_GE(est.top[i - 1].score, est.top[i].score);
}

TEST(EstimatePpr, SourceTopsTheList) {
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  const auto est = estimate_ppr(g, parts, 0, {.num_walks = 20000});
  ASSERT_FALSE(est.top.empty());
  EXPECT_EQ(est.top[0].vertex, 0u);
}

TEST(EstimatePpr, DeterministicForSeed) {
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  PprConfig cfg;
  cfg.num_walks = 5000;
  const auto a = estimate_ppr(g, parts, 2, cfg);
  const auto b = estimate_ppr(g, parts, 2, cfg);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].vertex, b.top[i].vertex);
    EXPECT_DOUBLE_EQ(a.top[i].score, b.top[i].score);
  }
}

TEST(EstimatePpr, ValidatesInputs) {
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  EXPECT_THROW(estimate_ppr(g, parts, 99, {}), CheckError);
  PprConfig bad;
  bad.stop_prob = 0.0;
  EXPECT_THROW(estimate_ppr(g, parts, 0, bad), CheckError);
}

TEST(EstimatePpr, PathEndSourceMatchesExactTopVertex) {
  // Starting at the path end (vertex 7, degree 1) every move funnels
  // through vertex 6, which legitimately accumulates the most mass — the
  // estimator must agree with the exact solver about that.
  const Graph g = lollipop();
  const auto parts = partition::ChunkV().partition(g, 2);
  const auto est = estimate_ppr(g, parts, 7, {.num_walks = 50000});
  const auto exact = exact_ppr(g, 7, 0.15);
  ASSERT_FALSE(est.top.empty());
  const auto exact_top = static_cast<graph::VertexId>(
      std::max_element(exact.begin(), exact.end()) - exact.begin());
  EXPECT_EQ(est.top[0].vertex, exact_top);
}

}  // namespace
}  // namespace bpart::walk
