#include "walk/threaded_walk.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"
#include "util/check.hpp"
#include "walk/apps.hpp"
#include "walk/walk_engine.hpp"

namespace bpart::walk {
namespace {

using graph::Graph;

Graph lattice() {
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 1024;
  cfg.k = 4;
  cfg.beta = 0.2;
  cfg.seed = 3;
  return Graph::from_edges(graph::watts_strogatz(cfg));
}

TEST(ThreadedWalk, ExactStepTotalWithoutDeadEnds) {
  const Graph g = lattice();
  const auto parts = partition::ChunkV().partition(g, 4);
  ThreadedWalkConfig cfg;
  cfg.length = 6;
  cfg.walks_per_vertex = 2;
  const auto report = run_simple_walks_threaded(g, parts, cfg);
  EXPECT_EQ(report.total_steps,
            static_cast<std::uint64_t>(g.num_vertices()) * 2 * 6);
}

TEST(ThreadedWalk, MessageWalksStatisticallyMatchSequentialEngine) {
  // Trajectories differ (per-machine RNG streams), but the crossing rate is
  // a property of the partition, so counts must agree within a few percent.
  const Graph g = lattice();
  const auto parts = partition::HashPartitioner().partition(g, 4);
  ThreadedWalkConfig tcfg;
  tcfg.length = 8;
  tcfg.walks_per_vertex = 4;
  const auto threaded = run_simple_walks_threaded(g, parts, tcfg);

  WalkConfig scfg;
  scfg.walks_per_vertex = 4;
  const auto sequential =
      run_walks(g, parts, SimpleRandomWalk(8), scfg);

  ASSERT_EQ(threaded.total_steps, sequential.total_steps);
  const double t = static_cast<double>(threaded.message_walks);
  const double s = static_cast<double>(sequential.message_walks);
  EXPECT_NEAR(t / s, 1.0, 0.05);
}

TEST(ThreadedWalk, SingleMachineShipsNothing) {
  const Graph g = lattice();
  const auto parts = partition::ChunkV().partition(g, 1);
  const auto report = run_simple_walks_threaded(g, parts, {});
  EXPECT_EQ(report.message_walks, 0u);
  EXPECT_LE(report.supersteps, 2u);  // everything finishes in one phase
}

TEST(ThreadedWalk, LocalPartitionNeedsFewerSuperstepsThanHash) {
  const Graph g = lattice();
  ThreadedWalkConfig cfg;
  cfg.length = 8;
  const auto chunk = run_simple_walks_threaded(
      g, partition::ChunkV().partition(g, 4), cfg);
  const auto hash = run_simple_walks_threaded(
      g, partition::HashPartitioner().partition(g, 4), cfg);
  EXPECT_LT(chunk.message_walks, hash.message_walks);
}

TEST(ThreadedWalk, DeadEndsTerminateEarly) {
  graph::EdgeList el;
  el.add(0, 1);
  el.add(1, 2);  // 2 is a sink
  const Graph g = Graph::from_edges(el);
  partition::Partition parts(3, 2);
  parts.assign(0, 0);
  parts.assign(1, 1);
  parts.assign(2, 0);
  const auto report = run_simple_walks_threaded(g, parts, {.length = 10});
  // Walker@0: 2 steps; walker@1: 1 step; walker@2: 0.
  EXPECT_EQ(report.total_steps, 3u);
  EXPECT_EQ(report.message_walks, 3u);  // 0->1 crossing, 1->2, and 0's hop
}

TEST(ThreadedWalk, ValidatesLimits) {
  const Graph g = lattice();
  const auto parts = partition::ChunkV().partition(g, 2);
  ThreadedWalkConfig cfg;
  cfg.length = 300;  // > 8-bit step counter
  EXPECT_THROW(run_simple_walks_threaded(g, parts, cfg), CheckError);
}

}  // namespace
}  // namespace bpart::walk
