#include "walk/walk_engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "partition/hash_partitioner.hpp"
#include "partition/metrics.hpp"
#include "walk/apps.hpp"

namespace bpart::walk {
namespace {

using graph::EdgeList;
using graph::Graph;
using partition::Partition;

Graph ring(graph::VertexId n) {
  EdgeList el;
  for (graph::VertexId v = 0; v < n; ++v)
    el.add_undirected(v, (v + 1) % n);
  return Graph::from_edges(el);
}

Graph social() {
  graph::CommunityGraphConfig cfg;
  cfg.num_vertices = 4096;
  cfg.avg_degree = 12;
  cfg.num_communities = 32;
  cfg.seed = 11;
  return Graph::from_edges_symmetric(graph::community_scale_free(cfg));
}

TEST(WalkEngine, FixedLengthWalksTakeExactSteps) {
  const Graph g = ring(64);
  const Partition p = partition::ChunkV().partition(g, 4);
  WalkConfig cfg;
  cfg.walks_per_vertex = 2;
  cfg.greedy_local = false;  // synchronous mode: one step per iteration
  const auto report = run_walks(g, p, SimpleRandomWalk(4), cfg);
  // 128 walkers x 4 steps, no dead ends on a ring.
  EXPECT_EQ(report.total_steps, 128u * 4u);
  // 4 stepping iterations plus a final one that retires all walkers.
  EXPECT_EQ(report.run.iterations.size(), 5u);
}

TEST(WalkEngine, GreedyLocalTakesSameStepsInFewerIterations) {
  // KnightKing's greedy compute phase: identical walk lengths, but a walker
  // only pauses at partition boundaries, so iterations shrink while
  // message walks stay tied to cut crossings.
  const Graph g = ring(64);
  const Partition p = partition::ChunkV().partition(g, 4);
  WalkConfig sync_cfg;
  sync_cfg.greedy_local = false;
  WalkConfig greedy_cfg;
  greedy_cfg.greedy_local = true;
  const auto sync = run_walks(g, p, SimpleRandomWalk(4), sync_cfg);
  const auto greedy = run_walks(g, p, SimpleRandomWalk(4), greedy_cfg);
  EXPECT_EQ(greedy.total_steps, sync.total_steps);
  // The last straggler bounds the iteration count, so greedy can tie sync
  // but never exceed it — and its first iteration must complete most of
  // the walking (every walker runs until it hits a boundary).
  EXPECT_LE(greedy.run.iterations.size(), sync.run.iterations.size());
  EXPECT_GT(greedy.run.iterations[0].total_work(),
            2 * sync.run.iterations[0].total_work());
  // On a 16-vertex-per-part ring, most steps stay local: far fewer
  // messages than steps.
  EXPECT_LT(greedy.message_walks, greedy.total_steps / 2);
}

TEST(WalkEngine, VisitsCountStartsAndMoves) {
  const Graph g = ring(16);
  const Partition p = partition::ChunkV().partition(g, 2);
  const auto report = run_walks(g, p, SimpleRandomWalk(3), {});
  const std::uint64_t total_visits =
      std::accumulate(report.visits.begin(), report.visits.end(),
                      std::uint64_t{0});
  EXPECT_EQ(total_visits, 16u + report.total_steps);
}

TEST(WalkEngine, DeterministicForSeed) {
  const Graph g = social();
  const Partition p = partition::ChunkV().partition(g, 4);
  WalkConfig cfg;
  cfg.seed = 77;
  const auto a = run_walks(g, p, SimpleRandomWalk(4), cfg);
  const auto b = run_walks(g, p, SimpleRandomWalk(4), cfg);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.message_walks, b.message_walks);
  EXPECT_EQ(a.visits, b.visits);
}

TEST(WalkEngine, SeedChangesTrajectories) {
  const Graph g = social();
  const Partition p = partition::ChunkV().partition(g, 4);
  WalkConfig c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  const auto a = run_walks(g, p, SimpleRandomWalk(4), c1);
  const auto b = run_walks(g, p, SimpleRandomWalk(4), c2);
  EXPECT_NE(a.visits, b.visits);
}

TEST(WalkEngine, MessageWalksMatchSimMessages) {
  const Graph g = social();
  const Partition p = partition::HashPartitioner().partition(g, 8);
  const auto report = run_walks(g, p, SimpleRandomWalk(4), {});
  EXPECT_EQ(report.message_walks, report.run.total_messages());
}

TEST(WalkEngine, MessageWalksTrackCutRatio) {
  // Hash cuts ~7/8 of edges, ChunkV far fewer on a community graph: the
  // message-walk count (Fig. 5b) must follow the same order.
  const Graph g = social();
  const auto hash =
      run_walks(g, partition::HashPartitioner().partition(g, 8),
                SimpleRandomWalk(4), {});
  const auto chunk = run_walks(g, partition::ChunkV().partition(g, 8),
                               SimpleRandomWalk(4), {});
  EXPECT_GT(hash.message_walks, chunk.message_walks);
  // And roughly proportional: hash message share ~ cut ratio.
  const double hash_share = static_cast<double>(hash.message_walks) /
                            static_cast<double>(hash.total_steps);
  EXPECT_NEAR(hash_share, 0.875, 0.05);
}

TEST(WalkEngine, DeadEndsTerminateWalkers) {
  // Directed path 0 -> 1 -> 2: walkers from every vertex, all stop at 2.
  EdgeList el;
  el.add(0, 1);
  el.add(1, 2);
  const Graph g = Graph::from_edges(el);
  const Partition p = partition::ChunkV().partition(g, 1);
  const auto report = run_walks(g, p, SimpleRandomWalk(10), {});
  // Steps: walker@0 takes 2, walker@1 takes 1, walker@2 takes 0.
  EXPECT_EQ(report.total_steps, 3u);
}

TEST(WalkEngine, RecordPathsCapturesTrajectories) {
  const Graph g = ring(8);
  const Partition p = partition::ChunkV().partition(g, 2);
  WalkConfig cfg;
  cfg.record_paths = true;
  const auto report = run_walks(g, p, SimpleRandomWalk(5), cfg);
  ASSERT_EQ(report.paths.size(), 8u);
  for (std::size_t i = 0; i < report.paths.size(); ++i) {
    const auto& path = report.paths[i];
    ASSERT_EQ(path.size(), 6u);  // start + 5 steps
    EXPECT_EQ(path[0], static_cast<graph::VertexId>(i));
    for (std::size_t s = 1; s < path.size(); ++s) {
      // Consecutive path vertices must be graph neighbors.
      const auto nbrs = g.out_neighbors(path[s - 1]);
      EXPECT_TRUE(std::find(nbrs.begin(), nbrs.end(), path[s]) !=
                  nbrs.end());
    }
  }
}

TEST(WalkEngine, WalksPerVertexMultiplies) {
  const Graph g = ring(10);
  const Partition p = partition::ChunkV().partition(g, 2);
  WalkConfig cfg;
  cfg.walks_per_vertex = 5;
  const auto report = run_walks(g, p, SimpleRandomWalk(2), cfg);
  EXPECT_EQ(report.total_steps, 10u * 5u * 2u);
}

TEST(WalkEngine, ValidatesInputs) {
  const Graph g = ring(10);
  const Partition wrong_size(5, 2);
  EXPECT_THROW(run_walks(g, wrong_size, SimpleRandomWalk(2), {}),
               CheckError);
  partition::Partition unassigned(10, 2);
  EXPECT_THROW(run_walks(g, unassigned, SimpleRandomWalk(2), {}),
               CheckError);
}

}  // namespace
}  // namespace bpart::walk
