#include "walk/weighted_walk.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/chunk.hpp"
#include "util/check.hpp"

namespace bpart::walk {
namespace {

using graph::EdgeList;
using graph::Graph;

Graph lattice() {
  graph::WattsStrogatzConfig cfg;
  cfg.num_vertices = 512;
  cfg.k = 4;
  cfg.beta = 0.1;
  return Graph::from_edges(graph::watts_strogatz(cfg));
}

TEST(WeightedWalk, EdgeWeightsDeterministicAndInRange) {
  for (graph::VertexId v = 0; v < 100; ++v) {
    const double w = weighted_walk_edge_weight(v, v + 1, 7, 16);
    EXPECT_GE(w, 1.0);
    EXPECT_LE(w, 16.0);
    EXPECT_DOUBLE_EQ(w, weighted_walk_edge_weight(v, v + 1, 7, 16));
  }
}

TEST(WeightedWalk, TransitionProbabilitiesMatchWeights) {
  // Star: vertex 0 -> {1, 2, 3}; probabilities must equal weight shares.
  EdgeList el;
  el.add(0, 1);
  el.add(0, 2);
  el.add(0, 3);
  const Graph g = Graph::from_edges(el);
  WeightedWalkConfig cfg;
  const WeightedRandomWalk app(g, cfg);
  double total = 0;
  for (graph::EdgeId k = 0; k < 3; ++k)
    total += app.transition_probability(0, k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (graph::EdgeId k = 0; k < 3; ++k) {
    const double w = weighted_walk_edge_weight(0, g.out_neighbor(0, k),
                                               cfg.weight_seed,
                                               cfg.max_weight);
    EXPECT_GT(app.transition_probability(0, k), 0.0);
    EXPECT_NEAR(app.transition_probability(0, k),
                w / (weighted_walk_edge_weight(0, 1, 7, 16) +
                     weighted_walk_edge_weight(0, 2, 7, 16) +
                     weighted_walk_edge_weight(0, 3, 7, 16)),
                1e-12);
  }
}

TEST(WeightedWalk, EmpiricalFrequenciesFollowWeights) {
  EdgeList el;
  el.add(0, 1);
  el.add(0, 2);
  const Graph g = Graph::from_edges(el);
  const WeightedRandomWalk app(g, {.length = 1});
  const double p1 = app.transition_probability(0, 0);

  Xoshiro256 shared(3);
  StepRng rng(shared);
  int first = 0;
  constexpr int kN = 100000;
  WalkerState state;
  state.current = 0;
  for (int i = 0; i < kN; ++i) {
    const StepDecision d = app.step(state, g, rng);
    if (d.next == 1) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / kN, p1, 0.01);
}

TEST(WeightedWalk, FixedLengthOnLattice) {
  const Graph g = lattice();
  const WeightedRandomWalk app(g, {.length = 6});
  const auto report =
      run_walks(g, partition::ChunkV().partition(g, 4), app, {});
  EXPECT_EQ(report.total_steps,
            static_cast<std::uint64_t>(g.num_vertices()) * 6u);
}

TEST(WeightedWalk, DeadEndsStopWalkers) {
  EdgeList el;
  el.add(0, 1);  // 1 is a sink
  const Graph g = Graph::from_edges(el);
  const WeightedRandomWalk app(g, {.length = 10});
  const auto report =
      run_walks(g, partition::ChunkV().partition(g, 1), app, {});
  EXPECT_EQ(report.total_steps, 1u);
}

TEST(WeightedWalk, GuardsAgainstWrongGraph) {
  const Graph small = Graph::from_edges([] {
    EdgeList el;
    el.add_undirected(0, 1);
    return el;
  }());
  const Graph big = lattice();
  const WeightedRandomWalk app(small, {});
  WalkerState state;
  state.current = 100;  // beyond `small`'s tables
  Xoshiro256 shared(1);
  StepRng rng(shared);
  EXPECT_THROW((void)app.step(state, big, rng), CheckError);
}

}  // namespace
}  // namespace bpart::walk
